//! The label store: a concurrent registry of named datasets + labels.
//!
//! The paper's central economics are *build once, serve forever*: a label
//! is a small artifact computed from a dataset that afterwards answers any
//! pattern-count query. The [`LabelStore`] is the serving-side home for
//! those artifacts — datasets are registered under a name, their label is
//! computed according to a [`LabelPolicy`], and concurrent readers resolve
//! `name → (dataset, label, cache)` without blocking each other.
//!
//! Labels can be *refreshed* in place (e.g. after re-profiling with a
//! different size bound); every refresh bumps the entry's generation
//! counter and clears its estimate cache, so stale cached answers can
//! never be served.

use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

use pclabel_core::attrset::AttrSet;
use pclabel_core::counting::CountingProfile;
use pclabel_core::hash::FxHashMap;
use pclabel_core::label::Label;
use pclabel_core::search::{top_down_search, SearchOptions};
use pclabel_data::dataset::Dataset;
use pclabel_data::error::DataError;
use pclabel_data::mem::HeapBytes;
use pclabel_telemetry::{Phase, Trace};
use pclabel_wal::record::{DatasetImage, PolicyRepr, WalOp};

use crate::cache::ShardedCache;
use crate::durability::WalSink;
use crate::health::Health;
use crate::parallel::auto_threads;

/// Errors surfaced by the engine layers.
#[derive(Debug)]
pub enum EngineError {
    /// No dataset registered under this name.
    UnknownDataset(String),
    /// A dataset with this name already exists (remove or refresh it).
    AlreadyRegistered(String),
    /// A malformed request (bad attribute name, empty batch, …).
    BadRequest(String),
    /// An underlying data/search error.
    Data(DataError),
    /// The durability plane failed (WAL append, fsync, snapshot or
    /// recovery). Mutations fail rather than run unlogged.
    Durability(String),
    /// The store is in read-only degraded mode: the disk is failing,
    /// queries keep serving, mutations are rejected until the probe
    /// thread restores read-write. Carries the root-cause reason.
    Degraded(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownDataset(name) => write!(f, "unknown dataset {name:?}"),
            EngineError::AlreadyRegistered(name) => {
                write!(f, "dataset {name:?} is already registered")
            }
            EngineError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            EngineError::Data(e) => write!(f, "{e}"),
            EngineError::Durability(msg) => write!(f, "durability error: {msg}"),
            EngineError::Degraded(reason) => {
                write!(f, "store is read-only (degraded): {reason}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<DataError> for EngineError {
    fn from(e: DataError) -> Self {
        EngineError::Data(e)
    }
}

/// How a registered dataset's label is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelPolicy {
    /// Build `L_S` over exactly this attribute subset.
    Attrs(AttrSet),
    /// Run the top-down optimal-label search with this size bound `B_s`
    /// (default tuning: lattice-aware refinement evaluator, auto-sized
    /// parallelism).
    SearchBound(u64),
    /// [`LabelPolicy::SearchBound`] with explicit evaluator tuning: the
    /// wire-level `"refine": false` escape hatch forces the cold
    /// per-candidate rebuild (bit-identical results, ablation/debugging
    /// only).
    Search {
        /// The size bound `B_s` on `|PC|`.
        bound: u64,
        /// Use the refinement evaluator (see
        /// [`SearchOptions::refine`](pclabel_core::search::SearchOptions)).
        refine: bool,
    },
}

/// The policy's wire/WAL representation (engine-agnostic, defined in
/// `pclabel-wal` so the on-disk format does not depend on this crate).
pub(crate) fn policy_repr(policy: LabelPolicy) -> PolicyRepr {
    match policy {
        LabelPolicy::Attrs(attrs) => PolicyRepr::Attrs(attrs.iter().map(|a| a as u32).collect()),
        LabelPolicy::SearchBound(bound) => PolicyRepr::Search {
            bound,
            refine: true,
        },
        LabelPolicy::Search { bound, refine } => PolicyRepr::Search { bound, refine },
    }
}

/// The label's selected attribute indices as logged in WAL records and
/// snapshots.
pub(crate) fn sel_of(label: &Label) -> Vec<u32> {
    label.attrs().iter().map(|a| a as u32).collect()
}

/// What [`LabelStore::append_rows`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppendReport {
    /// Rows appended by this call.
    pub appended: usize,
    /// `|D|` after the append.
    pub total_rows: u64,
    /// The entry's new generation.
    pub generation: u64,
    /// `true` when the label was updated shard-incrementally; `false`
    /// when a dictionary grew and the label was rebuilt in full.
    pub incremental: bool,
    /// `PC` shards the appended rows touched (sorted; empty on rebuild).
    pub touched_shards: Vec<u32>,
}

/// Per-component heap footprint of one store entry, in bytes. The
/// component names double as the `component` label values of the
/// `pclabel_dataset_bytes` Prometheus gauges, so the breakdown reads
/// the same in the `stats` op, `/debug/memory` and a scrape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EntryMemory {
    /// Dataset columns + schema (dictionaries included — the dataset is
    /// the schema's primary owner; the label shares it via `Arc`).
    pub dataset: u64,
    /// The label's `PC` shard maps.
    pub label_pc: u64,
    /// The label's `VC` value-count tables.
    pub label_vc: u64,
    /// Lazily-materialized marginal tables cached on the label.
    pub label_marginals: u64,
    /// The per-dataset pattern→estimate cache.
    pub cache: u64,
}

impl EntryMemory {
    /// Sum over all components.
    pub fn total(&self) -> u64 {
        self.dataset + self.label_pc + self.label_vc + self.label_marginals + self.cache
    }

    /// `(component, bytes)` pairs in a fixed, stable order.
    pub fn components(&self) -> [(&'static str, u64); 5] {
        [
            ("dataset", self.dataset),
            ("label_pc", self.label_pc),
            ("label_vc", self.label_vc),
            ("label_marginals", self.label_marginals),
            ("cache", self.cache),
        ]
    }
}

/// One consistent dataset/label/generation triple; the three always
/// travel together under one lock so readers can never observe a mixed
/// view (e.g. an appended dataset with the pre-append label).
struct EntryState {
    dataset: Arc<Dataset>,
    label: Arc<Label>,
    generation: u64,
    /// LSN of the WAL record that produced this state (0 when the
    /// store runs without durability). Replay applies an op to an
    /// entry only when the op's LSN exceeds this, which is what makes
    /// replay idempotent without a store-wide barrier.
    applied_lsn: u64,
}

/// One registered dataset: the data, its current label version and the
/// per-dataset estimate cache. Since appends arrived, the dataset itself
/// is versioned alongside the label — both swap atomically under the
/// entry's lock.
pub struct StoreEntry {
    name: Box<str>,
    state: RwLock<EntryState>,
    cache: ShardedCache,
}

impl StoreEntry {
    /// The registration name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The currently-registered dataset (cheap `Arc` clone).
    pub fn dataset(&self) -> Arc<Dataset> {
        Arc::clone(&self.state.read().expect("entry lock").dataset)
    }

    /// A handle to the current label (cheap `Arc` clone; never blocks
    /// writers for longer than the clone).
    pub fn label(&self) -> Arc<Label> {
        Arc::clone(&self.state.read().expect("entry lock").label)
    }

    /// Monotone counter, bumped by every [`LabelStore::refresh`] and
    /// [`LabelStore::append_rows`].
    pub fn generation(&self) -> u64 {
        self.state.read().expect("entry lock").generation
    }

    /// One consistent `(dataset, label, generation)` triple.
    pub fn snapshot(&self) -> (Arc<Dataset>, Arc<Label>, u64) {
        let cur = self.state.read().expect("entry lock");
        (
            Arc::clone(&cur.dataset),
            Arc::clone(&cur.label),
            cur.generation,
        )
    }

    /// LSN of the WAL record that produced the current state (0 when
    /// the store runs without durability).
    pub fn applied_lsn(&self) -> u64 {
        self.state.read().expect("entry lock").applied_lsn
    }

    /// One consistent `(dataset, label, generation, applied_lsn)`
    /// quadruple — what the background snapshotter captures.
    pub(crate) fn durable_snapshot(&self) -> (Arc<Dataset>, Arc<Label>, u64, u64) {
        let cur = self.state.read().expect("entry lock");
        (
            Arc::clone(&cur.dataset),
            Arc::clone(&cur.label),
            cur.generation,
            cur.applied_lsn,
        )
    }

    /// Runs `f` against the current dataset/label version while holding
    /// the entry's read lock. A concurrent [`LabelStore::refresh`] or
    /// [`LabelStore::append_rows`] waits for `f` to finish before
    /// swapping the state and invalidating the cache, so anything `f`
    /// writes to [`StoreEntry::cache`] is guaranteed to be derived from
    /// the version it was handed — stale estimates can never outlive a
    /// refresh or append.
    pub fn with_snapshot<R>(&self, f: impl FnOnce(&Arc<Dataset>, &Arc<Label>, u64) -> R) -> R {
        let cur = self.state.read().expect("entry lock");
        f(&cur.dataset, &cur.label, cur.generation)
    }

    /// The per-dataset pattern→estimate cache.
    pub fn cache(&self) -> &ShardedCache {
        &self.cache
    }

    /// Deep heap accounting for this entry, broken down by component.
    /// Reads one consistent snapshot; the cache is measured as-is.
    pub fn memory(&self) -> EntryMemory {
        let (dataset, label, _) = self.snapshot();
        EntryMemory {
            dataset: dataset.heap_bytes(),
            label_pc: label.pc_heap_bytes(),
            label_vc: label.vc_heap_bytes(),
            label_marginals: label.marginal_heap_bytes(),
            cache: self.cache.heap_bytes(),
        }
    }

    /// Attribute names of `label`'s subset `S`, in index order.
    pub fn attr_names(label: &Label) -> Vec<String> {
        label
            .attrs()
            .iter()
            .map(|a| {
                label
                    .schema()
                    .attr(a)
                    .map(|at| at.name().to_string())
                    .unwrap_or_default()
            })
            .collect()
    }

    /// Attribute names of the current label's subset `S`, in index order.
    pub fn label_attr_names(&self) -> Vec<String> {
        Self::attr_names(&self.label())
    }
}

impl HeapBytes for StoreEntry {
    fn heap_bytes(&self) -> u64 {
        self.name.len() as u64 + self.memory().total()
    }
}

impl fmt::Debug for StoreEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (dataset, label, generation) = self.snapshot();
        f.debug_struct("StoreEntry")
            .field("name", &self.name)
            .field("rows", &dataset.n_rows())
            .field("label_attrs", &label.attrs().to_vec())
            .field("generation", &generation)
            .finish()
    }
}

/// Folds a counting build profile into a request trace, when one is
/// attached.
fn record_profile(trace: Option<&Trace>, profile: &CountingProfile) {
    if let Some(trace) = trace {
        trace.add_phase_secs(Phase::CountPartition, profile.partition_secs);
        trace.add_phase_secs(Phase::CountCount, profile.count_secs);
        trace.add_phase_secs(Phase::CountAssemble, profile.assemble_secs);
        trace.record_peak_bytes(profile.peak_bytes);
    }
}

fn compute_label(
    dataset: &Dataset,
    policy: LabelPolicy,
    trace: Option<&Trace>,
) -> Result<Label, EngineError> {
    match policy {
        LabelPolicy::Attrs(attrs) => {
            let n = dataset.n_attrs();
            if let Some(bad) = attrs.iter().find(|&a| a >= n) {
                return Err(EngineError::BadRequest(format!(
                    "label attribute index {bad} out of range (dataset has {n} attributes)"
                )));
            }
            let (label, profile) =
                Label::build_parallel_profiled(dataset, attrs, auto_threads(dataset.n_rows()));
            record_profile(trace, &profile);
            Ok(label)
        }
        LabelPolicy::SearchBound(bound) => compute_search_label(dataset, bound, true, trace),
        LabelPolicy::Search { bound, refine } => {
            compute_search_label(dataset, bound, refine, trace)
        }
    }
}

/// Runs the top-down search with serving-side tuning: candidate
/// evaluation and per-candidate counting threads sized from the dataset
/// and hardware (`auto_threads`), and the lattice-aware refinement
/// evaluator on by default (`refine: false` is the cold-rebuild
/// ablation; results are bit-identical either way).
fn compute_search_label(
    dataset: &Dataset,
    bound: u64,
    refine: bool,
    trace: Option<&Trace>,
) -> Result<Label, EngineError> {
    let workers = auto_threads(dataset.n_rows());
    let opts = SearchOptions::with_bound(bound)
        .refine(refine)
        .threads(workers)
        .count_threads(workers);
    let t0 = std::time::Instant::now();
    let outcome = top_down_search(dataset, &opts)?;
    if let Some(trace) = trace {
        trace.add_phase(Phase::SearchEval, t0.elapsed());
    }
    outcome.into_best_label().ok_or_else(|| {
        EngineError::BadRequest(format!("search with bound {bound} produced no label"))
    })
}

/// Everything guarded by the store's one registry lock. `entries` and
/// `retired` live under the same lock so a remove + re-register of the
/// same name can never race into a non-monotone generation.
#[derive(Debug, Default)]
struct StoreInner {
    entries: FxHashMap<String, Arc<StoreEntry>>,
    /// Generations of removed names: `name → (generation at removal,
    /// LSN of the remove record)`. A re-registration under the same
    /// name resumes *above* the retired generation, which keeps the
    /// `(name, generation)` pair unique across the store's whole
    /// history — the property WAL replay and response caching rely on.
    retired: FxHashMap<String, (u64, u64)>,
}

/// Concurrent registry of named datasets and their labels.
///
/// When a `WalSink` is attached (the daemon runs with `--data-dir`),
/// every mutating path — register, refresh, append, remove — appends
/// its WAL record **before** the state change becomes visible to
/// readers, and fails the mutation if the append fails. A store
/// without a sink behaves exactly as before (pure in-memory).
#[derive(Debug, Default)]
pub struct LabelStore {
    inner: RwLock<StoreInner>,
    sink: OnceLock<Arc<WalSink>>,
    health: OnceLock<Arc<Health>>,
}

impl LabelStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches the WAL sink. Called once by the durability layer
    /// after recovery, before the store is exposed to traffic; later
    /// calls are ignored.
    pub(crate) fn set_sink(&self, sink: Arc<WalSink>) {
        let _ = self.sink.set(sink);
    }

    /// Attaches the health state machine alongside the sink, so
    /// mutators can fail fast while the store is degraded.
    pub(crate) fn set_health(&self, health: Arc<Health>) {
        let _ = self.health.set(health);
    }

    /// Rejects mutations while degraded — checked at the top of every
    /// mutating op, before any work or lock. Queries never come here.
    fn check_writable(&self) -> Result<(), EngineError> {
        if let Some(health) = self.health.get() {
            if let Some(reason) = health.degraded_reason() {
                return Err(EngineError::Degraded(reason));
            }
        }
        Ok(())
    }

    /// The retired generation recorded for a removed name, if any.
    pub fn retired_generation(&self, name: &str) -> Option<u64> {
        self.inner
            .read()
            .expect("store lock")
            .retired
            .get(name)
            .map(|&(generation, _)| generation)
    }

    /// Registers `dataset` under `name`, computing its label according to
    /// `policy`. Label computation happens outside the registry lock, so
    /// concurrent lookups never stall behind an expensive registration.
    pub fn register(
        &self,
        name: impl Into<String>,
        dataset: Dataset,
        policy: LabelPolicy,
    ) -> Result<Arc<StoreEntry>, EngineError> {
        self.register_traced(name, dataset, policy, None)
    }

    /// [`LabelStore::register`] with an optional request trace recording
    /// the counting/search phases of the label build.
    pub fn register_traced(
        &self,
        name: impl Into<String>,
        dataset: Dataset,
        policy: LabelPolicy,
        trace: Option<&Trace>,
    ) -> Result<Arc<StoreEntry>, EngineError> {
        self.check_writable()?;
        let name = name.into();
        if self
            .inner
            .read()
            .expect("store lock")
            .entries
            .contains_key(&name)
        {
            return Err(EngineError::AlreadyRegistered(name));
        }
        let label = compute_label(&dataset, policy, trace)?;
        // The WAL payload is captured outside the registry lock (the
        // dataset image is a full column copy); the append itself runs
        // under it, so the record order matches the publication order.
        let image = self
            .sink
            .get()
            .map(|_| DatasetImage::from_dataset(&dataset));
        let sel = sel_of(&label);
        let mut inner = self.inner.write().expect("store lock");
        if inner.entries.contains_key(&name) {
            return Err(EngineError::AlreadyRegistered(name));
        }
        // Resume above the retired generation (if any) so `(name,
        // generation)` stays unique across remove/re-register cycles.
        let generation = inner.retired.get(&name).map(|&(g, _)| g + 1).unwrap_or(0);
        let mut applied_lsn = 0;
        if let Some(sink) = self.sink.get() {
            applied_lsn = sink.append(&WalOp::Register {
                name: name.clone(),
                generation,
                policy: policy_repr(policy),
                sel,
                dataset: image.expect("image captured when sink present"),
            })?;
        }
        let entry = Arc::new(StoreEntry {
            name: name.clone().into_boxed_str(),
            state: RwLock::new(EntryState {
                dataset: Arc::new(dataset),
                label: Arc::new(label),
                generation,
                applied_lsn,
            }),
            cache: ShardedCache::default(),
        });
        inner.entries.insert(name, Arc::clone(&entry));
        Ok(entry)
    }

    /// Resolves a name, or errors with [`EngineError::UnknownDataset`].
    pub fn get(&self, name: &str) -> Result<Arc<StoreEntry>, EngineError> {
        self.try_get(name)
            .ok_or_else(|| EngineError::UnknownDataset(name.to_string()))
    }

    /// Resolves a name if registered.
    pub fn try_get(&self, name: &str) -> Option<Arc<StoreEntry>> {
        self.inner
            .read()
            .expect("store lock")
            .entries
            .get(name)
            .cloned()
    }

    /// Recomputes an entry's label under a (possibly different) policy,
    /// bumps its generation and clears its estimate cache, all within the
    /// entry's write section: batches running under
    /// [`StoreEntry::with_snapshot`] finish against their snapshot first,
    /// and no estimate they cached can survive the refresh.
    pub fn refresh(&self, name: &str, policy: LabelPolicy) -> Result<u64, EngineError> {
        self.refresh_traced(name, policy, None)
    }

    /// [`LabelStore::refresh`] with an optional request trace recording
    /// the counting/search phases of the rebuild.
    pub fn refresh_traced(
        &self,
        name: &str,
        policy: LabelPolicy,
        trace: Option<&Trace>,
    ) -> Result<u64, EngineError> {
        self.check_writable()?;
        let entry = self.get(name)?;
        let mut dataset = entry.dataset();
        // A few optimistic passes: compute outside the lock so
        // lookups/queries never stall behind an expensive search…
        for _ in 0..3 {
            let label = compute_label(&dataset, policy, trace)?;
            let mut cur = entry.state.write().expect("entry lock");
            // …but since datasets became appendable, the snapshot can go
            // stale mid-compute: installing a label built from the
            // pre-append rows over the post-append dataset would break
            // the dataset/label invariant. Detect and redo.
            if !Arc::ptr_eq(&cur.dataset, &dataset) {
                dataset = Arc::clone(&cur.dataset);
                continue;
            }
            return self.install_refreshed(&entry, &mut cur, policy, label);
        }
        // A sustained append stream outpaced every optimistic pass:
        // compute the last one under the write lock. Readers stall for
        // one label build, but the refresh is guaranteed to land instead
        // of retrying forever.
        let mut cur = entry.state.write().expect("entry lock");
        let label = compute_label(&Arc::clone(&cur.dataset), policy, trace)?;
        self.install_refreshed(&entry, &mut cur, policy, label)
    }

    /// Swaps in a freshly computed label under the held write lock,
    /// logging the refresh first (append-before-publish). Clearing the
    /// cache here is sound: query batches only touch the cache under
    /// the read lock, so everything cleared is old-label and nothing
    /// old-label can be inserted afterwards.
    fn install_refreshed(
        &self,
        entry: &StoreEntry,
        cur: &mut EntryState,
        policy: LabelPolicy,
        label: Label,
    ) -> Result<u64, EngineError> {
        let generation = cur.generation + 1;
        if let Some(sink) = self.sink.get() {
            cur.applied_lsn = sink.append(&WalOp::Refresh {
                name: entry.name.to_string(),
                generation,
                policy: policy_repr(policy),
                sel: sel_of(&label),
            })?;
        }
        cur.label = Arc::new(label);
        cur.generation = generation;
        entry.cache.clear();
        Ok(generation)
    }

    /// Appends a batch of rows to a registered dataset and brings its
    /// label up to date, bumping the generation.
    ///
    /// While no dictionary of an attribute **inside the label's subset
    /// `S`** grows ([`Label::can_append`]), the label is updated
    /// **incrementally**: only the `PC` shards the new rows' keys land in
    /// are copied and refreshed ([`Label::with_appended`]), every other
    /// shard stays byte-shared with the previous generation, and only the
    /// cache entries pinned to touched shards (plus the shard-unpinned
    /// ones) are invalidated. New values on attributes *outside* `S` stay
    /// incremental — the `VC` table grows in place. A new value on an
    /// attribute of `S` changes the packed-key layout, so the label is
    /// rebuilt in full over the *same* subset `S` the current label uses
    /// (a search-chosen `S` is kept, not re-searched) and the cache is
    /// cleared; [`AppendReport::incremental`] reports which path ran.
    ///
    /// Like [`LabelStore::refresh`], the expensive work runs *outside*
    /// the entry's write lock: the dataset clone-and-extend and the label
    /// update (shard-incremental or, on the rare dictionary-growth
    /// fallback, the full rebuild) are computed against a generation
    /// snapshot, then installed under the lock only if the generation is
    /// unchanged — so readers are never stalled behind a rebuild.
    /// Concurrent writers force a recompute (a few optimistic passes,
    /// then one final pass under the lock that is guaranteed to land),
    /// and query batches never see a half-applied append.
    pub fn append_rows<S: AsRef<str>>(
        &self,
        name: &str,
        rows: &[Vec<Option<S>>],
    ) -> Result<AppendReport, EngineError> {
        self.append_rows_traced(name, rows, None)
    }

    /// [`LabelStore::append_rows`] with an optional request trace
    /// recording the label update's counting phases.
    pub fn append_rows_traced<S: AsRef<str>>(
        &self,
        name: &str,
        rows: &[Vec<Option<S>>],
        trace: Option<&Trace>,
    ) -> Result<AppendReport, EngineError> {
        self.check_writable()?;
        let entry = self.get(name)?;
        if rows.is_empty() {
            return Err(EngineError::BadRequest(
                "append_rows needs a non-empty rows batch".to_string(),
            ));
        }
        // Optimistic passes: compute against a snapshot, revalidate by
        // generation (a refresh changes the label without touching the
        // dataset, so dataset pointer identity would not be enough).
        for _ in 0..3 {
            let (dataset0, label0, generation0) = entry.snapshot();
            let (dataset, label, incremental, touched) =
                Self::appended_state(&dataset0, &label0, rows, trace)?;
            let mut cur = entry.state.write().expect("entry lock");
            if cur.generation != generation0 {
                continue;
            }
            return self.install_append(
                &entry,
                &mut cur,
                dataset,
                label,
                rows,
                incremental,
                touched,
            );
        }
        // A sustained write stream outpaced every optimistic pass:
        // compute the last one under the write lock so the append is
        // guaranteed to land instead of retrying forever.
        let mut cur = entry.state.write().expect("entry lock");
        let (dataset, label, incremental, touched) = Self::appended_state(
            &Arc::clone(&cur.dataset),
            &Arc::clone(&cur.label),
            rows,
            trace,
        )?;
        self.install_append(&entry, &mut cur, dataset, label, rows, incremental, touched)
    }

    /// Computes the post-append `(dataset, label)` pair from a snapshot.
    /// While no dictionary of an attribute inside the label's subset `S`
    /// grows ([`Label::can_append`]), the label is updated
    /// shard-incrementally ([`Label::with_appended`]); otherwise it is
    /// rebuilt in full over the *same* subset `S` (a search-chosen `S` is
    /// kept, not re-searched).
    #[allow(clippy::type_complexity)]
    fn appended_state<S: AsRef<str>>(
        base: &Dataset,
        label: &Label,
        rows: &[Vec<Option<S>>],
        trace: Option<&Trace>,
    ) -> Result<(Dataset, Arc<Label>, bool, Vec<u32>), EngineError> {
        let mut dataset = base.clone();
        let old_rows = dataset.n_rows();
        dataset.append_labeled_rows(rows)?;
        if label.can_append(&dataset) {
            let t0 = std::time::Instant::now();
            let (label, touched) = label.with_appended(&dataset, old_rows..dataset.n_rows());
            if let Some(trace) = trace {
                // The incremental path is a pure counting update: no
                // partition pass, no reassembly from shard parts.
                trace.add_phase(Phase::CountCount, t0.elapsed());
            }
            Ok((dataset, Arc::new(label), true, touched))
        } else {
            let (rebuilt, profile) = Label::build_parallel_profiled(
                &dataset,
                label.attrs(),
                auto_threads(dataset.n_rows()),
            );
            record_profile(trace, &profile);
            Ok((dataset, Arc::new(rebuilt), false, Vec::new()))
        }
    }

    /// Swaps in a computed append under the held write lock, logging
    /// the row batch first (append-before-publish), and invalidates the
    /// cache (same argument as refresh): shard-local for incremental
    /// appends, everything otherwise.
    #[allow(clippy::too_many_arguments)]
    fn install_append<S: AsRef<str>>(
        &self,
        entry: &StoreEntry,
        cur: &mut EntryState,
        dataset: Dataset,
        label: Arc<Label>,
        rows: &[Vec<Option<S>>],
        incremental: bool,
        touched_shards: Vec<u32>,
    ) -> Result<AppendReport, EngineError> {
        let generation = cur.generation + 1;
        if let Some(sink) = self.sink.get() {
            cur.applied_lsn = sink.append(&WalOp::AppendRows {
                name: entry.name.to_string(),
                generation,
                rows: rows
                    .iter()
                    .map(|row| {
                        row.iter()
                            .map(|cell| cell.as_ref().map(|s| s.as_ref().to_string()))
                            .collect()
                    })
                    .collect(),
            })?;
        }
        let total_rows = dataset.n_rows() as u64;
        cur.dataset = Arc::new(dataset);
        cur.label = label;
        cur.generation = generation;
        if incremental {
            entry.cache.invalidate_count_shards(&touched_shards);
        } else {
            entry.cache.clear();
        }
        Ok(AppendReport {
            appended: rows.len(),
            total_rows,
            generation,
            incremental,
            touched_shards,
        })
    }

    /// Removes an entry; returns whether it existed.
    ///
    /// # Semantics
    ///
    /// Removal unlinks the name from the registry — it does **not**
    /// invalidate handles: an [`Arc<StoreEntry>`] obtained earlier (via
    /// [`LabelStore::get`] or a [`LabelStore::list`] snapshot) keeps
    /// working against the removed entry's final state until dropped.
    /// The removed entry's generation is *retired*, not forgotten: a
    /// later [`LabelStore::register`] under the same name starts at
    /// `retired_generation + 1`, so generations observed for a name are
    /// strictly monotone across the store's whole history — clients
    /// that cache `(name, generation)`-keyed answers can never collide
    /// a pre-remove generation with a post-re-register one.
    ///
    /// With durability attached, the `remove` record is logged before
    /// the name disappears; a WAL failure leaves the entry registered
    /// and returns [`EngineError::Durability`].
    pub fn remove(&self, name: &str) -> Result<bool, EngineError> {
        self.check_writable()?;
        let mut inner = self.inner.write().expect("store lock");
        let Some(entry) = inner.entries.get(name) else {
            return Ok(false);
        };
        let generation = entry.generation();
        let mut lsn = 0;
        if let Some(sink) = self.sink.get() {
            lsn = sink.append(&WalOp::Remove {
                name: name.to_string(),
                generation,
            })?;
        }
        inner.entries.remove(name);
        inner.retired.insert(name.to_string(), (generation, lsn));
        Ok(true)
    }

    /// All entries, sorted by name.
    pub fn list(&self) -> Vec<Arc<StoreEntry>> {
        let mut out: Vec<Arc<StoreEntry>> = self
            .inner
            .read()
            .expect("store lock")
            .entries
            .values()
            .cloned()
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.inner.read().expect("store lock").entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // ---- durability hooks (pub(crate): driven by `crate::durability`) ----
}

/// One retired-generation record: `(name, retired_generation, remove_lsn)`.
pub(crate) type RetiredRecord = (String, u64, u64);

impl LabelStore {
    /// One consistent capture for the background snapshotter: all live
    /// entries (sorted by name) plus the retired-generation table. Each
    /// entry is an `Arc` — the snapshotter reads its state afterwards
    /// via [`StoreEntry::durable_snapshot`], per-entry-consistent, which
    /// is all the on-disk format needs (per-entry `applied_lsn` makes
    /// replay idempotent without a store-wide barrier).
    pub(crate) fn capture_durable(&self) -> (Vec<Arc<StoreEntry>>, Vec<RetiredRecord>) {
        let inner = self.inner.read().expect("store lock");
        let mut entries: Vec<Arc<StoreEntry>> = inner.entries.values().cloned().collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        let mut retired: Vec<RetiredRecord> = inner
            .retired
            .iter()
            .map(|(name, &(generation, lsn))| (name.clone(), generation, lsn))
            .collect();
        retired.sort();
        (entries, retired)
    }

    /// Installs an entry rebuilt from a snapshot during recovery. The
    /// store must not be serving yet; an existing name is a recovery
    /// bug and panics.
    pub(crate) fn install_recovered(
        &self,
        name: String,
        dataset: Arc<Dataset>,
        label: Arc<Label>,
        generation: u64,
        applied_lsn: u64,
    ) {
        let entry = Arc::new(StoreEntry {
            name: name.clone().into_boxed_str(),
            state: RwLock::new(EntryState {
                dataset,
                label,
                generation,
                applied_lsn,
            }),
            cache: ShardedCache::default(),
        });
        let prev = self
            .inner
            .write()
            .expect("store lock")
            .entries
            .insert(name, entry);
        assert!(prev.is_none(), "install_recovered over a live entry");
    }

    /// Installs the retired-generation table from a snapshot during
    /// recovery.
    pub(crate) fn install_retired(&self, retired: impl IntoIterator<Item = (String, u64, u64)>) {
        let mut inner = self.inner.write().expect("store lock");
        for (name, generation, lsn) in retired {
            inner.retired.insert(name, (generation, lsn));
        }
    }

    /// Whether a replayed op at `lsn` targets a name whose *later*
    /// remove is already reflected in the store (the recovery snapshot
    /// postdates the remove). Such ops are stale history — skipping
    /// them is correct because nothing of the removed entry survives.
    fn superseded_by_remove(&self, name: &str, lsn: u64) -> bool {
        self.inner
            .read()
            .expect("store lock")
            .retired
            .get(name)
            .is_some_and(|&(_, removed_at)| removed_at >= lsn)
    }

    /// Applies one replayed WAL record during recovery. Idempotent via
    /// per-entry `applied_lsn`: records at or below an entry's LSN (it
    /// came out of a snapshot taken after them) are skipped. Generation
    /// mismatches beyond that are corruption — the WAL's dense-LSN
    /// check should have caught any gap — and fail recovery rather
    /// than rebuild a silently different store.
    pub(crate) fn replay(&self, lsn: u64, op: &WalOp) -> Result<(), EngineError> {
        let stale = |cur_generation: u64, op_generation: u64, what: &str| {
            EngineError::Durability(format!(
                "replay lsn {lsn}: {what} {:?} expects generation {op_generation}, \
                 store has {cur_generation}",
                op.name()
            ))
        };
        match op {
            WalOp::Register {
                name,
                generation,
                sel,
                dataset,
                ..
            } => {
                {
                    let inner = self.inner.read().expect("store lock");
                    if let Some(entry) = inner.entries.get(name) {
                        if entry.applied_lsn() >= lsn {
                            return Ok(());
                        }
                        return Err(EngineError::Durability(format!(
                            "replay lsn {lsn}: register of live dataset {name:?}"
                        )));
                    }
                    if let Some(&(retired_generation, retired_lsn)) = inner.retired.get(name) {
                        if retired_lsn >= lsn {
                            return Ok(()); // register superseded by a later remove
                        }
                        if retired_generation + 1 != *generation {
                            return Err(stale(retired_generation + 1, *generation, "register"));
                        }
                    } else if *generation != 0 {
                        return Err(stale(0, *generation, "register"));
                    }
                }
                let dataset = Arc::new(dataset.clone().into_dataset()?);
                let attrs = AttrSet::from_indices(sel.iter().map(|&a| a as usize));
                let label = Label::build_parallel(&dataset, attrs, auto_threads(dataset.n_rows()));
                self.install_recovered(name.clone(), dataset, Arc::new(label), *generation, lsn);
                Ok(())
            }
            WalOp::Refresh {
                name,
                generation,
                sel,
                ..
            } => {
                let Some(entry) = self.try_get(name) else {
                    if self.superseded_by_remove(name, lsn) {
                        return Ok(());
                    }
                    return Err(EngineError::Durability(format!(
                        "replay lsn {lsn}: refresh of unknown dataset {name:?}"
                    )));
                };
                let mut cur = entry.state.write().expect("entry lock");
                if cur.applied_lsn >= lsn {
                    return Ok(());
                }
                if cur.generation + 1 != *generation {
                    return Err(stale(cur.generation + 1, *generation, "refresh"));
                }
                let attrs = AttrSet::from_indices(sel.iter().map(|&a| a as usize));
                let label =
                    Label::build_parallel(&cur.dataset, attrs, auto_threads(cur.dataset.n_rows()));
                cur.label = Arc::new(label);
                cur.generation = *generation;
                cur.applied_lsn = lsn;
                Ok(())
            }
            WalOp::AppendRows {
                name,
                generation,
                rows,
            } => {
                let Some(entry) = self.try_get(name) else {
                    if self.superseded_by_remove(name, lsn) {
                        return Ok(());
                    }
                    return Err(EngineError::Durability(format!(
                        "replay lsn {lsn}: append to unknown dataset {name:?}"
                    )));
                };
                let mut cur = entry.state.write().expect("entry lock");
                if cur.applied_lsn >= lsn {
                    return Ok(());
                }
                if cur.generation + 1 != *generation {
                    return Err(stale(cur.generation + 1, *generation, "append_rows"));
                }
                let (dataset, label, _, _) =
                    Self::appended_state(&cur.dataset, &cur.label, rows, None)?;
                cur.dataset = Arc::new(dataset);
                cur.label = label;
                cur.generation = *generation;
                cur.applied_lsn = lsn;
                Ok(())
            }
            WalOp::Remove { name, generation } => {
                let mut inner = self.inner.write().expect("store lock");
                let Some(entry) = inner.entries.get(name) else {
                    // Already absent: either the snapshot postdates the
                    // remove (retired table knows it) or this is a replay
                    // rerun; both are fine.
                    return Ok(());
                };
                let (cur_generation, cur_lsn) = {
                    let cur = entry.state.read().expect("entry lock");
                    (cur.generation, cur.applied_lsn)
                };
                if cur_lsn >= lsn {
                    return Ok(());
                }
                if cur_generation != *generation {
                    return Err(stale(cur_generation, *generation, "remove"));
                }
                inner.entries.remove(name);
                inner.retired.insert(name.clone(), (*generation, lsn));
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pclabel_core::pattern::Pattern;
    use pclabel_data::generate::figure2_sample;

    #[test]
    fn register_lookup_refresh_remove() {
        let store = LabelStore::new();
        let entry = store
            .register("census", figure2_sample(), LabelPolicy::SearchBound(5))
            .unwrap();
        assert_eq!(entry.label().attrs(), AttrSet::from_indices([1, 3]));
        assert_eq!(entry.generation(), 0);
        assert_eq!(store.len(), 1);

        // Duplicate names are rejected.
        assert!(matches!(
            store.register("census", figure2_sample(), LabelPolicy::SearchBound(5)),
            Err(EngineError::AlreadyRegistered(_))
        ));

        // Refresh with an explicit subset bumps the generation.
        let generation = store
            .refresh("census", LabelPolicy::Attrs(AttrSet::from_indices([0, 1])))
            .unwrap();
        assert_eq!(generation, 1);
        let entry = store.get("census").unwrap();
        assert_eq!(entry.label().attrs(), AttrSet::from_indices([0, 1]));
        assert_eq!(entry.label_attr_names(), vec!["gender", "age group"]);

        assert!(store.remove("census").unwrap());
        assert!(!store.remove("census").unwrap());
        assert!(matches!(
            store.get("census"),
            Err(EngineError::UnknownDataset(_))
        ));
    }

    #[test]
    fn remove_and_reregister_keeps_generations_monotone() {
        let store = LabelStore::new();
        store
            .register(
                "census",
                figure2_sample(),
                LabelPolicy::Attrs(AttrSet::from_indices([1, 3])),
            )
            .unwrap();
        // Walk the generation up: one refresh + one append → generation 2.
        store
            .refresh("census", LabelPolicy::Attrs(AttrSet::from_indices([0, 1])))
            .unwrap();
        let report = store
            .append_rows(
                "census",
                &[vec![
                    Some("Female"),
                    Some("20-39"),
                    Some("Caucasian"),
                    Some("married"),
                ]],
            )
            .unwrap();
        assert_eq!(report.generation, 2);

        assert!(store.remove("census").unwrap());
        assert_eq!(store.retired_generation("census"), Some(2));

        // Re-registering the same name resumes above the retired
        // generation — (name, generation) pairs never repeat.
        let entry = store
            .register("census", figure2_sample(), LabelPolicy::SearchBound(5))
            .unwrap();
        assert_eq!(entry.generation(), 3);
        let generation = store
            .refresh("census", LabelPolicy::SearchBound(100))
            .unwrap();
        assert_eq!(generation, 4);

        // A second remove/re-register cycle keeps climbing.
        assert!(store.remove("census").unwrap());
        assert_eq!(store.retired_generation("census"), Some(4));
        let entry = store
            .register("census", figure2_sample(), LabelPolicy::SearchBound(5))
            .unwrap();
        assert_eq!(entry.generation(), 5);
    }

    #[test]
    fn bad_policies_are_rejected() {
        let store = LabelStore::new();
        let err = store
            .register(
                "x",
                figure2_sample(),
                LabelPolicy::Attrs(AttrSet::from_indices([0, 9])),
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::BadRequest(_)), "{err}");
        assert!(store.is_empty());
    }

    #[test]
    fn refresh_invalidates_cache() {
        let store = LabelStore::new();
        let entry = store
            .register("census", figure2_sample(), LabelPolicy::SearchBound(5))
            .unwrap();
        entry.cache().insert(Pattern::from_terms([(0, 0)]), 9.0);
        assert_eq!(entry.cache().len(), 1);
        store
            .refresh("census", LabelPolicy::SearchBound(100))
            .unwrap();
        assert!(entry.cache().is_empty());
    }

    #[test]
    fn append_rows_updates_label_incrementally() {
        let store = LabelStore::new();
        store
            .register(
                "census",
                figure2_sample(),
                LabelPolicy::Attrs(AttrSet::from_indices([1, 3])),
            )
            .unwrap();
        // Values already in the dictionaries: incremental path.
        let report = store
            .append_rows(
                "census",
                &[
                    vec![
                        Some("Female"),
                        Some("20-39"),
                        Some("Caucasian"),
                        Some("married"),
                    ],
                    vec![
                        Some("Male"),
                        Some("under 20"),
                        Some("African-American"),
                        Some("single"),
                    ],
                ],
            )
            .unwrap();
        assert!(report.incremental);
        assert_eq!(report.appended, 2);
        assert_eq!(report.total_rows, 20);
        assert_eq!(report.generation, 1);
        assert!(!report.touched_shards.is_empty());

        // The appended label equals a from-scratch build over the grown
        // dataset.
        let entry = store.get("census").unwrap();
        let (dataset, label, generation) = entry.snapshot();
        assert_eq!(generation, 1);
        assert_eq!(dataset.n_rows(), 20);
        let full = Label::build(&dataset, AttrSet::from_indices([1, 3]));
        assert_eq!(label.pattern_count_size(), full.pattern_count_size());
        for r in 0..dataset.n_rows() {
            let p = pclabel_core::pattern::Pattern::from_row(&dataset, r);
            assert_eq!(label.estimate(&p), full.estimate(&p), "row {r}");
        }
    }

    #[test]
    fn append_rows_with_new_value_rebuilds() {
        let store = LabelStore::new();
        store
            .register(
                "census",
                figure2_sample(),
                LabelPolicy::Attrs(AttrSet::from_indices([1, 3])),
            )
            .unwrap();
        let report = store
            .append_rows(
                "census",
                &[vec![
                    Some("Female"),
                    Some("60+"), // unseen age group: dictionary grows
                    Some("Caucasian"),
                    Some("married"),
                ]],
            )
            .unwrap();
        assert!(!report.incremental);
        assert!(report.touched_shards.is_empty());
        let entry = store.get("census").unwrap();
        let (dataset, label, _) = entry.snapshot();
        // The rebuilt label keeps its subset S and covers the new value.
        assert_eq!(label.attrs(), AttrSet::from_indices([1, 3]));
        let p = pclabel_core::pattern::Pattern::parse(
            &dataset,
            &[("age group", "60+"), ("marital status", "married")],
        )
        .unwrap();
        assert_eq!(label.estimate(&p), 1.0);
    }

    #[test]
    fn append_rows_growth_outside_s_stays_incremental() {
        let store = LabelStore::new();
        store
            .register(
                "census",
                figure2_sample(),
                LabelPolicy::Attrs(AttrSet::from_indices([1, 3])),
            )
            .unwrap();
        // "Martian" is a new race value; race (2) is outside S = {1, 3},
        // so the packed-key layout is unchanged and the append must not
        // fall back to a rebuild.
        let report = store
            .append_rows(
                "census",
                &[vec![
                    Some("Female"),
                    Some("20-39"),
                    Some("Martian"),
                    Some("married"),
                ]],
            )
            .unwrap();
        assert!(report.incremental);
        assert!(!report.touched_shards.is_empty());
        let entry = store.get("census").unwrap();
        let (dataset, label, _) = entry.snapshot();
        let full = Label::build(&dataset, AttrSet::from_indices([1, 3]));
        let p = pclabel_core::pattern::Pattern::parse(
            &dataset,
            &[("race", "Martian"), ("age group", "20-39")],
        )
        .unwrap();
        assert_eq!(label.estimate(&p), full.estimate(&p));
        assert!(label.estimate(&p) > 0.0);
    }

    #[test]
    fn append_rows_invalidates_cache_shard_locally() {
        let store = LabelStore::new();
        store
            .register(
                "census",
                figure2_sample(),
                LabelPolicy::Attrs(AttrSet::from_indices([1, 3])),
            )
            .unwrap();
        let entry = store.get("census").unwrap();
        let label = entry.label();
        // Two full-S patterns pinned to their count shards, one unpinned.
        let d = entry.dataset();
        let hit = pclabel_core::pattern::Pattern::parse(
            &d,
            &[("age group", "20-39"), ("marital status", "married")],
        )
        .unwrap();
        let miss = pclabel_core::pattern::Pattern::parse(
            &d,
            &[("age group", "under 20"), ("marital status", "single")],
        )
        .unwrap();
        let hit_shard = label.count_shard_of(&hit).unwrap() as u32;
        let miss_shard = label.count_shard_of(&miss).unwrap() as u32;
        entry
            .cache()
            .insert_tagged(hit.clone(), 6.0, Some(hit_shard));
        entry
            .cache()
            .insert_tagged(miss.clone(), 6.0, Some(miss_shard));
        entry
            .cache()
            .insert(pclabel_core::pattern::Pattern::from_terms([(0, 0)]), 9.0);

        // Append a (20-39, married) row: its shard must be invalidated.
        let report = store
            .append_rows(
                "census",
                &[vec![
                    Some("Male"),
                    Some("20-39"),
                    Some("Caucasian"),
                    Some("married"),
                ]],
            )
            .unwrap();
        assert!(report.incremental);
        assert!(report.touched_shards.contains(&hit_shard));
        assert_eq!(entry.cache().get(&hit), None, "touched shard entry dropped");
        if !report.touched_shards.contains(&miss_shard) {
            assert_eq!(
                entry.cache().get(&miss),
                Some(6.0),
                "untouched shard entry survives"
            );
        }
    }

    #[test]
    fn entry_memory_accounts_components_and_grows_with_appends() {
        let store = LabelStore::new();
        let entry = store
            .register(
                "census",
                figure2_sample(),
                LabelPolicy::Attrs(AttrSet::from_indices([1, 3])),
            )
            .unwrap();
        let before = entry.memory();
        assert!(before.dataset > 0, "dataset columns are accounted");
        assert!(before.label_pc > 0, "PC shard maps are accounted");
        assert!(before.label_vc > 0, "VC tables are accounted");
        assert_eq!(
            before.total(),
            before.components().iter().map(|(_, b)| b).sum::<u64>()
        );
        assert!(entry.heap_bytes() >= before.total());

        // Estimating through the label materializes a marginal table;
        // caching an answer allocates cache slots. Both must show up.
        let d = entry.dataset();
        let p = pclabel_core::pattern::Pattern::parse(&d, &[("age group", "20-39")]).unwrap();
        let _ = entry.label().estimate(&p);
        entry.cache().insert(p, 6.0);
        let warmed = entry.memory();
        assert!(warmed.label_marginals > 0);
        assert!(warmed.cache > 0);

        // Appending rows grows the accounted dataset footprint, and the
        // total never shrinks: the acceptance bar for /debug/memory.
        let grown_rows: Vec<Vec<Option<&str>>> = (0..64)
            .map(|_| {
                vec![
                    Some("Female"),
                    Some("20-39"),
                    Some("Caucasian"),
                    Some("married"),
                ]
            })
            .collect();
        store.append_rows("census", &grown_rows).unwrap();
        let after = entry.memory();
        assert!(
            after.dataset > warmed.dataset,
            "dataset bytes must grow with appended rows ({} -> {})",
            warmed.dataset,
            after.dataset
        );
    }

    #[test]
    fn append_rows_rejects_bad_batches() {
        let store = LabelStore::new();
        store
            .register("census", figure2_sample(), LabelPolicy::SearchBound(5))
            .unwrap();
        let empty: &[Vec<Option<&str>>] = &[];
        assert!(matches!(
            store.append_rows("census", empty),
            Err(EngineError::BadRequest(_))
        ));
        // Arity mismatch fails without mutating the entry.
        let before = store.get("census").unwrap().generation();
        assert!(store
            .append_rows("census", &[vec![Some("Female")]])
            .is_err());
        let entry = store.get("census").unwrap();
        assert_eq!(entry.generation(), before);
        assert_eq!(entry.dataset().n_rows(), 18);
        assert!(matches!(
            store.append_rows("ghost", &[vec![Some("x")]]),
            Err(EngineError::UnknownDataset(_))
        ));
    }

    #[test]
    fn search_policy_refine_ablation_matches_default() {
        let store = LabelStore::new();
        store
            .register("on", figure2_sample(), LabelPolicy::SearchBound(5))
            .unwrap();
        store
            .register(
                "off",
                figure2_sample(),
                LabelPolicy::Search {
                    bound: 5,
                    refine: false,
                },
            )
            .unwrap();
        let on = store.get("on").unwrap().label();
        let off = store.get("off").unwrap().label();
        assert_eq!(on.attrs(), off.attrs());
        assert_eq!(on.pattern_count_size(), off.pattern_count_size());
    }

    #[test]
    fn concurrent_appends_all_land() {
        // Racing appends (some forcing the dictionary-growth rebuild
        // path, which now computes outside the write lock and retries on
        // generation conflicts) must each land exactly once.
        let store = Arc::new(LabelStore::new());
        store
            .register(
                "census",
                figure2_sample(),
                LabelPolicy::Attrs(AttrSet::from_indices([1, 3])),
            )
            .unwrap();
        let writers = 6usize;
        std::thread::scope(|s| {
            for t in 0..writers {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    // Odd writers introduce a new age-group value (inside
                    // S → full rebuild); even writers stay incremental.
                    let age = if t % 2 == 0 {
                        "20-39".to_string()
                    } else {
                        format!("age-{t}")
                    };
                    let report = store
                        .append_rows(
                            "census",
                            &[vec![
                                Some("Female".to_string()),
                                Some(age),
                                Some("Caucasian".to_string()),
                                Some("married".to_string()),
                            ]],
                        )
                        .unwrap();
                    assert_eq!(report.appended, 1);
                });
            }
        });
        let entry = store.get("census").unwrap();
        let (dataset, label, generation) = entry.snapshot();
        assert_eq!(dataset.n_rows(), 18 + writers);
        assert_eq!(generation, writers as u64);
        // The final label equals a from-scratch build over the final data.
        let full = Label::build(&dataset, AttrSet::from_indices([1, 3]));
        assert_eq!(label.pattern_count_size(), full.pattern_count_size());
        for r in 0..dataset.n_rows() {
            let p = pclabel_core::pattern::Pattern::from_row(&dataset, r);
            assert_eq!(label.estimate(&p), full.estimate(&p), "row {r}");
        }
    }

    #[test]
    fn concurrent_registration_and_lookup() {
        let store = Arc::new(LabelStore::new());
        std::thread::scope(|s| {
            for t in 0..8usize {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    let name = format!("d{}", t % 4);
                    // Many racing registers of 4 names: exactly one per
                    // name wins; the rest must see AlreadyRegistered.
                    let _ =
                        store.register(name.clone(), figure2_sample(), LabelPolicy::SearchBound(5));
                    for _ in 0..50 {
                        if let Some(e) = store.try_get(&name) {
                            assert_eq!(e.dataset().n_rows(), 18);
                            let _ = e.label();
                        }
                    }
                });
            }
        });
        assert_eq!(store.len(), 4);
        assert_eq!(store.list().len(), 4);
    }
}
