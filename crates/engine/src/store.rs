//! The label store: a concurrent registry of named datasets + labels.
//!
//! The paper's central economics are *build once, serve forever*: a label
//! is a small artifact computed from a dataset that afterwards answers any
//! pattern-count query. The [`LabelStore`] is the serving-side home for
//! those artifacts — datasets are registered under a name, their label is
//! computed according to a [`LabelPolicy`], and concurrent readers resolve
//! `name → (dataset, label, cache)` without blocking each other.
//!
//! Labels can be *refreshed* in place (e.g. after re-profiling with a
//! different size bound); every refresh bumps the entry's generation
//! counter and clears its estimate cache, so stale cached answers can
//! never be served.

use std::collections::hash_map::Entry;
use std::fmt;
use std::sync::{Arc, RwLock};

use pclabel_core::attrset::AttrSet;
use pclabel_core::hash::FxHashMap;
use pclabel_core::label::Label;
use pclabel_core::search::{top_down_search, SearchOptions};
use pclabel_data::dataset::Dataset;
use pclabel_data::error::DataError;

use crate::cache::ShardedCache;
use crate::parallel::auto_threads;

/// Errors surfaced by the engine layers.
#[derive(Debug)]
pub enum EngineError {
    /// No dataset registered under this name.
    UnknownDataset(String),
    /// A dataset with this name already exists (remove or refresh it).
    AlreadyRegistered(String),
    /// A malformed request (bad attribute name, empty batch, …).
    BadRequest(String),
    /// An underlying data/search error.
    Data(DataError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownDataset(name) => write!(f, "unknown dataset {name:?}"),
            EngineError::AlreadyRegistered(name) => {
                write!(f, "dataset {name:?} is already registered")
            }
            EngineError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            EngineError::Data(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<DataError> for EngineError {
    fn from(e: DataError) -> Self {
        EngineError::Data(e)
    }
}

/// How a registered dataset's label is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelPolicy {
    /// Build `L_S` over exactly this attribute subset.
    Attrs(AttrSet),
    /// Run the top-down optimal-label search with this size bound `B_s`.
    SearchBound(u64),
}

/// A label plus the generation it belongs to; the two always travel
/// together under one lock so readers can never observe a mixed pair.
struct LabelVersion {
    label: Arc<Label>,
    generation: u64,
}

/// One registered dataset: the data, its current label version and the
/// per-dataset estimate cache.
pub struct StoreEntry {
    name: Box<str>,
    dataset: Arc<Dataset>,
    current: RwLock<LabelVersion>,
    cache: ShardedCache,
}

impl StoreEntry {
    /// The registration name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The registered dataset.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// A handle to the current label (cheap `Arc` clone; never blocks
    /// writers for longer than the clone).
    pub fn label(&self) -> Arc<Label> {
        Arc::clone(&self.current.read().expect("label lock").label)
    }

    /// Monotone counter, bumped by every [`LabelStore::refresh`].
    pub fn generation(&self) -> u64 {
        self.current.read().expect("label lock").generation
    }

    /// One consistent `(label, generation)` pair.
    pub fn snapshot(&self) -> (Arc<Label>, u64) {
        let cur = self.current.read().expect("label lock");
        (Arc::clone(&cur.label), cur.generation)
    }

    /// Runs `f` against the current label version while holding the
    /// entry's read lock. A concurrent [`LabelStore::refresh`] waits for
    /// `f` to finish before swapping the label and clearing the cache,
    /// so anything `f` writes to [`StoreEntry::cache`] is guaranteed to
    /// be derived from the label it was handed — stale estimates can
    /// never outlive a refresh.
    pub fn with_label<R>(&self, f: impl FnOnce(&Arc<Label>, u64) -> R) -> R {
        let cur = self.current.read().expect("label lock");
        f(&cur.label, cur.generation)
    }

    /// The per-dataset pattern→estimate cache.
    pub fn cache(&self) -> &ShardedCache {
        &self.cache
    }

    /// Attribute names of `label`'s subset `S`, in index order.
    pub fn attr_names(label: &Label) -> Vec<String> {
        label
            .attrs()
            .iter()
            .map(|a| {
                label
                    .schema()
                    .attr(a)
                    .map(|at| at.name().to_string())
                    .unwrap_or_default()
            })
            .collect()
    }

    /// Attribute names of the current label's subset `S`, in index order.
    pub fn label_attr_names(&self) -> Vec<String> {
        Self::attr_names(&self.label())
    }
}

impl fmt::Debug for StoreEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StoreEntry")
            .field("name", &self.name)
            .field("rows", &self.dataset.n_rows())
            .field("label_attrs", &self.label().attrs().to_vec())
            .field("generation", &self.generation())
            .finish()
    }
}

fn compute_label(dataset: &Dataset, policy: LabelPolicy) -> Result<Label, EngineError> {
    match policy {
        LabelPolicy::Attrs(attrs) => {
            let n = dataset.n_attrs();
            if let Some(bad) = attrs.iter().find(|&a| a >= n) {
                return Err(EngineError::BadRequest(format!(
                    "label attribute index {bad} out of range (dataset has {n} attributes)"
                )));
            }
            Ok(Label::build_parallel(
                dataset,
                attrs,
                auto_threads(dataset.n_rows()),
            ))
        }
        LabelPolicy::SearchBound(bound) => {
            let outcome = top_down_search(dataset, &SearchOptions::with_bound(bound))?;
            outcome.into_best_label().ok_or_else(|| {
                EngineError::BadRequest(format!("search with bound {bound} produced no label"))
            })
        }
    }
}

/// Concurrent registry of named datasets and their labels.
#[derive(Debug, Default)]
pub struct LabelStore {
    entries: RwLock<FxHashMap<String, Arc<StoreEntry>>>,
}

impl LabelStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `dataset` under `name`, computing its label according to
    /// `policy`. Label computation happens outside the registry lock, so
    /// concurrent lookups never stall behind an expensive registration.
    pub fn register(
        &self,
        name: impl Into<String>,
        dataset: Dataset,
        policy: LabelPolicy,
    ) -> Result<Arc<StoreEntry>, EngineError> {
        let name = name.into();
        if self.entries.read().expect("store lock").contains_key(&name) {
            return Err(EngineError::AlreadyRegistered(name));
        }
        let label = compute_label(&dataset, policy)?;
        let entry = Arc::new(StoreEntry {
            name: name.clone().into_boxed_str(),
            dataset: Arc::new(dataset),
            current: RwLock::new(LabelVersion {
                label: Arc::new(label),
                generation: 0,
            }),
            cache: ShardedCache::default(),
        });
        match self.entries.write().expect("store lock").entry(name) {
            Entry::Occupied(e) => Err(EngineError::AlreadyRegistered(e.key().clone())),
            Entry::Vacant(v) => {
                v.insert(Arc::clone(&entry));
                Ok(entry)
            }
        }
    }

    /// Resolves a name, or errors with [`EngineError::UnknownDataset`].
    pub fn get(&self, name: &str) -> Result<Arc<StoreEntry>, EngineError> {
        self.try_get(name)
            .ok_or_else(|| EngineError::UnknownDataset(name.to_string()))
    }

    /// Resolves a name if registered.
    pub fn try_get(&self, name: &str) -> Option<Arc<StoreEntry>> {
        self.entries.read().expect("store lock").get(name).cloned()
    }

    /// Recomputes an entry's label under a (possibly different) policy,
    /// bumps its generation and clears its estimate cache, all within the
    /// entry's write section: batches running under
    /// [`StoreEntry::with_label`] finish against their snapshot first, and
    /// no estimate they cached can survive the refresh.
    pub fn refresh(&self, name: &str, policy: LabelPolicy) -> Result<u64, EngineError> {
        let entry = self.get(name)?;
        let label = compute_label(&entry.dataset, policy)?;
        let mut cur = entry.current.write().expect("label lock");
        cur.label = Arc::new(label);
        cur.generation += 1;
        // Clear while still holding the write lock: query batches only
        // touch the cache under the read lock, so everything cleared here
        // is old-label and nothing old-label can be inserted afterwards.
        entry.cache.clear();
        Ok(cur.generation)
    }

    /// Removes an entry; returns whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.entries
            .write()
            .expect("store lock")
            .remove(name)
            .is_some()
    }

    /// All entries, sorted by name.
    pub fn list(&self) -> Vec<Arc<StoreEntry>> {
        let mut out: Vec<Arc<StoreEntry>> = self
            .entries
            .read()
            .expect("store lock")
            .values()
            .cloned()
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.entries.read().expect("store lock").len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pclabel_core::pattern::Pattern;
    use pclabel_data::generate::figure2_sample;

    #[test]
    fn register_lookup_refresh_remove() {
        let store = LabelStore::new();
        let entry = store
            .register("census", figure2_sample(), LabelPolicy::SearchBound(5))
            .unwrap();
        assert_eq!(entry.label().attrs(), AttrSet::from_indices([1, 3]));
        assert_eq!(entry.generation(), 0);
        assert_eq!(store.len(), 1);

        // Duplicate names are rejected.
        assert!(matches!(
            store.register("census", figure2_sample(), LabelPolicy::SearchBound(5)),
            Err(EngineError::AlreadyRegistered(_))
        ));

        // Refresh with an explicit subset bumps the generation.
        let generation = store
            .refresh("census", LabelPolicy::Attrs(AttrSet::from_indices([0, 1])))
            .unwrap();
        assert_eq!(generation, 1);
        let entry = store.get("census").unwrap();
        assert_eq!(entry.label().attrs(), AttrSet::from_indices([0, 1]));
        assert_eq!(entry.label_attr_names(), vec!["gender", "age group"]);

        assert!(store.remove("census"));
        assert!(!store.remove("census"));
        assert!(matches!(
            store.get("census"),
            Err(EngineError::UnknownDataset(_))
        ));
    }

    #[test]
    fn bad_policies_are_rejected() {
        let store = LabelStore::new();
        let err = store
            .register(
                "x",
                figure2_sample(),
                LabelPolicy::Attrs(AttrSet::from_indices([0, 9])),
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::BadRequest(_)), "{err}");
        assert!(store.is_empty());
    }

    #[test]
    fn refresh_invalidates_cache() {
        let store = LabelStore::new();
        let entry = store
            .register("census", figure2_sample(), LabelPolicy::SearchBound(5))
            .unwrap();
        entry.cache().insert(Pattern::from_terms([(0, 0)]), 9.0);
        assert_eq!(entry.cache().len(), 1);
        store
            .refresh("census", LabelPolicy::SearchBound(100))
            .unwrap();
        assert!(entry.cache().is_empty());
    }

    #[test]
    fn concurrent_registration_and_lookup() {
        let store = Arc::new(LabelStore::new());
        std::thread::scope(|s| {
            for t in 0..8usize {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    let name = format!("d{}", t % 4);
                    // Many racing registers of 4 names: exactly one per
                    // name wins; the rest must see AlreadyRegistered.
                    let _ =
                        store.register(name.clone(), figure2_sample(), LabelPolicy::SearchBound(5));
                    for _ in 0..50 {
                        if let Some(e) = store.try_get(&name) {
                            assert_eq!(e.dataset().n_rows(), 18);
                            let _ = e.label();
                        }
                    }
                });
            }
        });
        assert_eq!(store.len(), 4);
        assert_eq!(store.list().len(), 4);
    }
}
