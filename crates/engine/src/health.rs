//! The engine health state machine: read-only degraded mode.
//!
//! A store wired to a WAL must not acknowledge mutations it cannot
//! log. Before this module, a failing disk surfaced as an opaque
//! per-request durability error — and background flush/snapshot thread
//! errors surfaced as nothing at all. [`Health`] turns persistent WAL
//! failure into an explicit state:
//!
//! * Any WAL append/fsync failure (foreground or background) calls one
//!   of the `note_*` methods, which counts the failure and flips the
//!   state to **degraded**. The first failure's reason is retained as
//!   the root cause until recovery.
//! * While degraded, mutators fail fast with
//!   [`EngineError::Degraded`](crate::store::EngineError) *before*
//!   touching the WAL (the wire shape is
//!   `{"ok":false,"error":"degraded","reason":...}`); queries keep
//!   serving the published in-memory state untouched.
//! * The durability plane's probe thread retries the data directory
//!   with jittered exponential backoff and calls [`Health::mark_healthy`]
//!   once a sanitize + fresh snapshot round-trip succeeds, atomically
//!   restoring read-write.
//!
//! Exposure: `pclabel_health_state` (0 healthy / 1 degraded),
//! `pclabel_wal_append_failures_total`,
//! `pclabel_wal_flush_failures_total`,
//! `pclabel_snapshot_failures_total`,
//! `pclabel_degraded_seconds_total` and
//! `pclabel_recovery_attempts_total`, plus the `health` section in the
//! `health` / `server_stats` ops and the 503 on `GET /healthz`.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pclabel_telemetry::{Counter, Gauge, Registry};

/// Degraded-time bookkeeping behind one mutex (all on slow paths).
#[derive(Debug, Default)]
struct Detail {
    /// Root-cause reason of the current degraded window (empty when
    /// healthy).
    reason: String,
    /// When the current degraded window began.
    since: Option<Instant>,
    /// Total degraded time across *completed* windows.
    completed: Duration,
    /// Whole seconds already credited to the Prometheus counter.
    credited_secs: u64,
}

/// A point-in-time health view for `health` / `server_stats`.
#[derive(Debug, Clone)]
pub struct HealthSnapshot {
    /// Whether the store is in read-only degraded mode.
    pub degraded: bool,
    /// Root cause of the current degraded window, if any.
    pub reason: Option<String>,
    /// Seconds spent in the current degraded window (0 when healthy).
    pub degraded_for_secs: f64,
    /// Total seconds spent degraded since boot, all windows.
    pub degraded_total_secs: f64,
    /// Recovery attempts made by the probe thread since boot.
    pub recovery_attempts: u64,
}

/// The shared health state machine (see the module docs).
#[derive(Debug)]
pub struct Health {
    /// 0 = healthy, 1 = degraded. The only hot-path read.
    state: AtomicU8,
    detail: Mutex<Detail>,
    state_gauge: Arc<Gauge>,
    append_failures: Arc<Counter>,
    flush_failures: Arc<Counter>,
    snapshot_failures: Arc<Counter>,
    degraded_seconds: Arc<Counter>,
    recovery_attempts: Arc<Counter>,
}

impl Health {
    /// Creates a healthy state machine with its metrics registered.
    pub fn new(registry: &Registry) -> Arc<Health> {
        Arc::new(Health {
            state: AtomicU8::new(0),
            detail: Mutex::new(Detail::default()),
            state_gauge: registry.gauge(
                "pclabel_health_state",
                "Store health: 0 healthy, 1 read-only degraded",
                &[],
            ),
            append_failures: registry.counter(
                "pclabel_wal_append_failures_total",
                "WAL append/fsync failures on the mutation path",
                &[],
            ),
            flush_failures: registry.counter(
                "pclabel_wal_flush_failures_total",
                "Background WAL batch-flush failures",
                &[],
            ),
            snapshot_failures: registry.counter(
                "pclabel_snapshot_failures_total",
                "Snapshot attempts that failed (background or heal)",
                &[],
            ),
            degraded_seconds: registry.counter(
                "pclabel_degraded_seconds_total",
                "Total seconds spent in read-only degraded mode",
                &[],
            ),
            recovery_attempts: registry.counter(
                "pclabel_recovery_attempts_total",
                "Degraded-mode recovery attempts by the probe thread",
                &[],
            ),
        })
    }

    /// Whether the store is degraded — the mutators' fast-path check.
    pub fn is_degraded(&self) -> bool {
        self.state.load(Ordering::Relaxed) == 1
    }

    /// The current degraded reason, if degraded.
    pub fn degraded_reason(&self) -> Option<String> {
        if !self.is_degraded() {
            return None;
        }
        let detail = self.detail.lock().expect("health lock");
        Some(detail.reason.clone())
    }

    /// Flips to degraded (idempotent: the first caller's reason is the
    /// retained root cause; later failures only count).
    pub fn mark_degraded(&self, reason: &str) {
        let mut detail = self.detail.lock().expect("health lock");
        if self.state.swap(1, Ordering::SeqCst) == 0 {
            detail.reason = reason.to_string();
            detail.since = Some(Instant::now());
            self.state_gauge.set(1);
        }
    }

    /// A WAL append or foreground fsync failed: count it and degrade.
    pub fn note_append_failure(&self, reason: &str) {
        self.append_failures.inc();
        self.mark_degraded(reason);
    }

    /// The background batch flusher failed an fsync: count and degrade.
    pub fn note_flush_failure(&self, reason: &str) {
        self.flush_failures.inc();
        self.mark_degraded(reason);
    }

    /// A snapshot attempt failed: count and degrade (a disk that cannot
    /// take snapshots is a disk about to fail the WAL too, and healing
    /// requires a snapshot anyway).
    pub fn note_snapshot_failure(&self, reason: &str) {
        self.snapshot_failures.inc();
        self.mark_degraded(reason);
    }

    /// Counts one probe-thread recovery attempt.
    pub fn count_recovery_attempt(&self) {
        self.recovery_attempts.inc();
    }

    /// Atomically restores read-write: closes the degraded window,
    /// credits its final seconds, clears the reason.
    pub fn mark_healthy(&self) {
        let mut detail = self.detail.lock().expect("health lock");
        if let Some(since) = detail.since.take() {
            detail.completed += since.elapsed();
        }
        Self::credit(&self.degraded_seconds, &mut detail);
        detail.reason.clear();
        self.state.store(0, Ordering::SeqCst);
        self.state_gauge.set(0);
    }

    /// Rolls elapsed degraded time into `pclabel_degraded_seconds_total`
    /// (whole seconds; called periodically by the probe thread so the
    /// counter rises *during* an outage, not just after it).
    pub fn tick(&self) {
        let mut detail = self.detail.lock().expect("health lock");
        Self::credit(&self.degraded_seconds, &mut detail);
    }

    fn credit(counter: &Counter, detail: &mut Detail) {
        let total = detail.completed
            + detail
                .since
                .map(|since| since.elapsed())
                .unwrap_or(Duration::ZERO);
        let secs = total.as_secs();
        if secs > detail.credited_secs {
            counter.add(secs - detail.credited_secs);
            detail.credited_secs = secs;
        }
    }

    /// A point-in-time view for the `health`/`server_stats` ops.
    pub fn snapshot(&self) -> HealthSnapshot {
        let degraded = self.is_degraded();
        let detail = self.detail.lock().expect("health lock");
        let current = detail
            .since
            .map(|since| since.elapsed())
            .unwrap_or(Duration::ZERO);
        HealthSnapshot {
            degraded,
            reason: degraded.then(|| detail.reason.clone()),
            degraded_for_secs: current.as_secs_f64(),
            degraded_total_secs: (detail.completed + current).as_secs_f64(),
            recovery_attempts: self.recovery_attempts.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrade_heal_cycle_tracks_state_and_reason() {
        let registry = Registry::new();
        let health = Health::new(&registry);
        assert!(!health.is_degraded());
        assert_eq!(health.degraded_reason(), None);

        health.note_append_failure("WAL append: no space left on device");
        assert!(health.is_degraded());
        // The first failure's reason is the retained root cause.
        health.note_flush_failure("later fsync error");
        assert_eq!(
            health.degraded_reason().as_deref(),
            Some("WAL append: no space left on device")
        );
        assert_eq!(health.append_failures.get(), 1);
        assert_eq!(health.flush_failures.get(), 1);
        assert_eq!(health.state_gauge.get(), 1);

        let snap = health.snapshot();
        assert!(snap.degraded);
        assert!(snap.reason.is_some());

        health.mark_healthy();
        assert!(!health.is_degraded());
        assert_eq!(health.degraded_reason(), None);
        assert_eq!(health.state_gauge.get(), 0);
        let snap = health.snapshot();
        assert!(!snap.degraded);
        assert_eq!(snap.degraded_for_secs, 0.0);
    }

    #[test]
    fn degraded_seconds_credit_is_monotone_across_windows() {
        let registry = Registry::new();
        let health = Health::new(&registry);
        health.mark_degraded("window 1");
        {
            // Backdate the window so whole seconds accrue without
            // sleeping in the test.
            let mut detail = health.detail.lock().unwrap();
            detail.since = Some(Instant::now() - Duration::from_secs(3));
        }
        health.tick();
        assert_eq!(health.degraded_seconds.get(), 3);
        health.tick();
        assert_eq!(
            health.degraded_seconds.get(),
            3,
            "tick must not double-credit"
        );
        health.mark_healthy();
        assert!(health.degraded_seconds.get() >= 3);
        let total_after_first = health.snapshot().degraded_total_secs;
        assert!(total_after_first >= 3.0);

        health.mark_degraded("window 2");
        {
            let mut detail = health.detail.lock().unwrap();
            detail.since = Some(Instant::now() - Duration::from_secs(2));
        }
        health.mark_healthy();
        assert!(health.degraded_seconds.get() >= 5);
        assert!(health.snapshot().degraded_total_secs >= 5.0);
    }
}
