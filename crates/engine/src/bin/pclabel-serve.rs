//! `pclabel-serve` — serve pattern count-based labels over stdin/stdout.
//!
//! Reads line-delimited JSON requests from stdin and writes one JSON
//! response per line to stdout (std-only, no network dependencies). See
//! `pclabel_engine::serve` for the protocol.
//!
//! ```text
//! pclabel-serve < requests.jsonl > responses.jsonl
//! ```

use std::io;

use pclabel_engine::query::{Engine, EngineConfig};
use pclabel_engine::serve::{serve, Dispatcher};

const USAGE: &str = "\
pclabel-serve — serve pattern count-based labels over stdin/stdout

usage: pclabel-serve [--help]

Reads one JSON request per stdin line, writes one JSON response per
stdout line. Requests (see `pclabel_engine::serve` docs for details):

  {\"op\":\"register\",\"dataset\":NAME,\"csv\":TEXT|\"generator\":\"figure2\",
   \"label_attrs\":[NAMES]|\"bound\":N}
  {\"op\":\"query\",\"dataset\":NAME,\"id\":ID,\"patterns\":[{ATTR:VALUE,...},...]}
  {\"op\":\"estimate_multi\",\"patterns\":[...],\"strategy\":\"most_specific\"|
   \"min_estimate\"|\"geometric_mean\",\"datasets\":[NAMES]}
  {\"op\":\"refresh\",\"dataset\":NAME,\"label_attrs\":[NAMES]|\"bound\":N}
  {\"op\":\"stats\",\"dataset\":NAME}
  {\"op\":\"list\"}
  {\"op\":\"health\"}
  {\"op\":\"drop\",\"dataset\":NAME}

environment:
  PCLABEL_QUERY_THREADS   worker threads for large batches (default: auto)
";

fn main() {
    if std::env::args().skip(1).any(|a| a == "-h" || a == "--help") {
        print!("{USAGE}");
        return;
    }
    let query_threads = std::env::var("PCLABEL_QUERY_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(0);
    let dispatcher = Dispatcher::new(Engine::new(EngineConfig {
        query_threads,
        ..EngineConfig::default()
    }));

    let stdin = io::stdin().lock();
    let stdout = io::stdout().lock();
    match serve(&dispatcher, stdin, stdout) {
        Ok(summary) => {
            eprintln!(
                "pclabel-serve: {} request(s), {} error(s)",
                summary.requests, summary.errors
            );
        }
        Err(e) => {
            eprintln!("pclabel-serve: I/O error: {e}");
            std::process::exit(1);
        }
    }
}
