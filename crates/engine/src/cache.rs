//! Sharded pattern→estimate cache.
//!
//! Serving workloads are read-heavy and repetitive: the same audit
//! patterns are estimated over and over against the same label. The cache
//! memoizes `pattern → estimate` per stored dataset. Sharding keeps lock
//! contention low under concurrent batches — each pattern hashes to one of
//! `shards` independent `Mutex<FxHashMap>` slices, so two threads only
//! contend when their patterns collide on a shard.
//!
//! Invalidation is the owner's job: [`crate::store::LabelStore`] clears
//! the cache whenever a dataset's label is refreshed (the entry's
//! generation counter bumps). Since labels became incrementally
//! appendable, entries can also carry the **`PC` count shard** their
//! answer was read from ([`ShardedCache::insert_tagged`]): after an
//! append that touched shards `T`, [`ShardedCache::invalidate_count_shards`]
//! drops only the entries pinned to a shard in `T` — plus the unpinned
//! ones, whose answers (marginals, independence estimates, `|D|`) can
//! depend on any shard or on `VC`/row-count state that every append
//! changes — and keeps every answer pinned to an untouched shard.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use pclabel_core::hash::{FxHashMap, FxHasher};
use pclabel_core::pattern::Pattern;

/// Default shard count (power of two for cheap masking).
pub const DEFAULT_SHARDS: usize = 16;

/// Default per-shard capacity (entries) before the shard is reset.
pub const DEFAULT_SHARD_CAPACITY: usize = 8_192;

/// Hit/miss/invalidation counters, cheap enough to bump on the hot path.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl CacheStats {
    /// Cache hits since creation (or last [`ShardedCache::clear`]).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses since creation (or last [`ShardedCache::clear`]).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries dropped by refresh/append invalidation since creation.
    /// Unlike hits/misses this is *not* reset by [`ShardedCache::clear`]
    /// — clearing is itself an invalidation event, and operators trend
    /// this counter across refreshes.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }
}

/// One cached answer: the estimate plus the `PC` count shard it depends
/// on (`None` = depends on more than one shard or on non-`PC` state).
type CachedEstimate = (f64, Option<u32>);

/// A sharded, bounded `pattern → estimate` map.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Box<[Mutex<FxHashMap<Pattern, CachedEstimate>>]>,
    mask: usize,
    shard_capacity: usize,
    stats: CacheStats,
}

impl ShardedCache {
    /// Creates a cache with `shards` slices (rounded up to a power of
    /// two) of at most `shard_capacity` entries each.
    pub fn new(shards: usize, shard_capacity: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            mask: shards - 1,
            shard_capacity: shard_capacity.max(1),
            stats: CacheStats::default(),
        }
    }

    fn shard_of(&self, pattern: &Pattern) -> &Mutex<FxHashMap<Pattern, CachedEstimate>> {
        let mut h = FxHasher::default();
        pattern.hash(&mut h);
        &self.shards[(h.finish() as usize) & self.mask]
    }

    /// Looks `pattern` up, recording a hit or miss.
    pub fn get(&self, pattern: &Pattern) -> Option<f64> {
        let found = self
            .shard_of(pattern)
            .lock()
            .expect("cache shard")
            .get(pattern)
            .copied();
        match found {
            Some((v, _)) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores an estimate with no count-shard pin (invalidated by every
    /// append). A full shard is reset first — crude but constant-time
    /// eviction that bounds memory at `shards × shard_capacity` entries.
    pub fn insert(&self, pattern: Pattern, estimate: f64) {
        self.insert_tagged(pattern, estimate, None);
    }

    /// Stores an estimate pinned to the `PC` count shard it was read
    /// from, making it survivable across appends that do not touch that
    /// shard (see [`ShardedCache::invalidate_count_shards`]).
    pub fn insert_tagged(&self, pattern: Pattern, estimate: f64, count_shard: Option<u32>) {
        let mut shard = self.shard_of(&pattern).lock().expect("cache shard");
        if shard.len() >= self.shard_capacity && !shard.contains_key(&pattern) {
            shard.clear();
        }
        shard.insert(pattern, (estimate, count_shard));
    }

    /// Drops every entry whose answer an append touching `touched` `PC`
    /// shards could have changed: entries pinned to a touched shard and
    /// all unpinned entries. Entries pinned to untouched shards survive.
    /// Returns how many entries were dropped.
    pub fn invalidate_count_shards(&self, touched: &[u32]) -> usize {
        let mut dropped = 0usize;
        for shard in self.shards.iter() {
            let mut shard = shard.lock().expect("cache shard");
            let before = shard.len();
            shard.retain(|_, (_, tag)| tag.is_some_and(|t| !touched.contains(&t)));
            dropped += before - shard.len();
        }
        self.stats
            .invalidations
            .fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Total cached entries across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard").len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry and resets the hit/miss counters (used on label
    /// refresh). Dropped entries count toward
    /// [`CacheStats::invalidations`], which survives the reset.
    pub fn clear(&self) {
        let mut dropped = 0u64;
        for shard in self.shards.iter() {
            let mut shard = shard.lock().expect("cache shard");
            dropped += shard.len() as u64;
            shard.clear();
        }
        self.stats
            .invalidations
            .fetch_add(dropped, Ordering::Relaxed);
        self.stats.hits.store(0, Ordering::Relaxed);
        self.stats.misses.store(0, Ordering::Relaxed);
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

impl Default for ShardedCache {
    fn default() -> Self {
        Self::new(DEFAULT_SHARDS, DEFAULT_SHARD_CAPACITY)
    }
}

impl pclabel_data::mem::HeapBytes for ShardedCache {
    /// Per-shard table slots (swiss-table model: key + value + control
    /// byte per unit of capacity) plus the heap the cached patterns'
    /// term vectors own.
    fn heap_bytes(&self) -> u64 {
        let slot =
            (std::mem::size_of::<Pattern>() + std::mem::size_of::<CachedEstimate>() + 1) as u64;
        self.shards
            .iter()
            .map(|s| {
                let shard = s.lock().expect("cache shard");
                shard.capacity() as u64 * slot
                    + shard
                        .keys()
                        .map(|p| (p.terms().count() * std::mem::size_of::<(u16, u32)>()) as u64)
                        .sum::<u64>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(a: usize, v: u32) -> Pattern {
        Pattern::from_terms([(a, v)])
    }

    #[test]
    fn get_insert_and_stats() {
        let c = ShardedCache::default();
        assert_eq!(c.get(&pat(0, 1)), None);
        c.insert(pat(0, 1), 42.0);
        assert_eq!(c.get(&pat(0, 1)), Some(42.0));
        assert_eq!(c.stats().hits(), 1);
        assert_eq!(c.stats().misses(), 1);
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().hits(), 0);
        // clear() dropped one entry; the invalidation counter survives
        // the hit/miss reset.
        assert_eq!(c.stats().invalidations(), 1);
    }

    #[test]
    fn capacity_bound_resets_full_shards() {
        let c = ShardedCache::new(1, 4);
        for v in 0..16u32 {
            c.insert(pat(0, v), v as f64);
        }
        assert!(c.len() <= 4, "len {} exceeds shard capacity", c.len());
        // The most recent insert always survives the reset.
        assert_eq!(c.get(&pat(0, 15)), Some(15.0));
    }

    #[test]
    fn shard_tagged_invalidation_is_shard_local() {
        let c = ShardedCache::default();
        c.insert_tagged(pat(0, 1), 1.0, Some(3));
        c.insert_tagged(pat(0, 2), 2.0, Some(7));
        c.insert(pat(0, 3), 3.0); // unpinned: dies on any append
        assert_eq!(c.len(), 3);

        // An append touching shard 3 kills the shard-3 entry and the
        // unpinned one; the shard-7 entry survives.
        let dropped = c.invalidate_count_shards(&[3]);
        assert_eq!(dropped, 2);
        assert_eq!(c.stats().invalidations(), 2);
        assert_eq!(c.get(&pat(0, 1)), None);
        assert_eq!(c.get(&pat(0, 2)), Some(2.0));
        assert_eq!(c.get(&pat(0, 3)), None);

        // Touching no listed shard still drops freshly-unpinned entries.
        c.insert(pat(1, 0), 9.0);
        assert_eq!(c.invalidate_count_shards(&[]), 1);
        assert_eq!(c.get(&pat(0, 2)), Some(2.0));
    }

    #[test]
    fn concurrent_mixed_load() {
        let c = std::sync::Arc::new(ShardedCache::new(8, 1024));
        std::thread::scope(|s| {
            for t in 0..8usize {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..500u32 {
                        let p = pat(t % 4, i % 64);
                        match c.get(&p) {
                            Some(v) => assert_eq!(v, (i % 64) as f64),
                            None => c.insert(p, (i % 64) as f64),
                        }
                    }
                });
            }
        });
        assert!(c.stats().hits() + c.stats().misses() >= 4000);
    }
}
