//! Dependency-free JSON reading/writing for the serve protocol.
//!
//! The workspace builds offline with no registry crates, so the
//! line-delimited JSON wire format of [`crate::serve`] is handled by this
//! ~300-line module instead of `serde_json`. It covers full JSON (RFC
//! 8259): objects, arrays, strings with escapes (including `\uXXXX` and
//! surrogate pairs), numbers, booleans and null. Object member order is
//! preserved. Numbers round-trip through Rust's shortest-representation
//! float formatting, so `f64` estimates survive write → parse losslessly.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source member order.
    Obj(Vec<(String, Json)>),
}

/// Parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, nothing else).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Appends the serialized form to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Object member lookup (linear scan; objects on this wire are small).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, when integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Compact serialization (`value.to_string()` produces wire-ready JSON).
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        // Integral values print without the ".0" suffix `{:?}` would add.
        fmt::Write::write_fmt(out, format_args!("{}", n as i64)).expect("write to String");
    } else {
        // `{:?}` is Rust's shortest round-trip representation.
        fmt::Write::write_fmt(out, format_args!("{n:?}")).expect("write to String");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32))
                    .expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let code = u16::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{08}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{0C}');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("unpaired high surrogate"));
                                    }
                                    let code = 0x10000
                                        + (((hi as u32) - 0xD800) << 10)
                                        + ((lo as u32) - 0xDC00);
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Bulk-copy the maximal run of unescaped bytes. The
                    // terminators (quote, backslash, controls) are all
                    // ASCII, so the run ends on a char boundary, and the
                    // input arrived as a &str, so the run is valid UTF-8.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    /// RFC 8259 number grammar: `-? (0 | [1-9][0-9]*) (\.[0-9]+)?
    /// ([eE][+-]?[0-9]+)?` — stricter than `f64::from_str` (no leading
    /// zeros, no bare/trailing dot, no `inf`/`NaN`).
    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err("leading zeros are not allowed"));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("digit expected in number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            message: "invalid number".into(),
            offset: start,
        })
    }
}

/// Convenience constructors for building response objects.
impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A numeric value.
    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-2.5e-3").unwrap(), Json::Num(-0.0025));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\ back ü 末 \u{1F600} \u{07}";
        let mut encoded = String::new();
        write_string(original, &mut encoded);
        let decoded = Json::parse(&encoded).unwrap();
        assert_eq!(decoded.as_str(), Some(original));
    }

    #[test]
    fn every_control_character_round_trips() {
        // RFC 8259 §7: U+0000–U+001F MUST be escaped. Each one, plus the
        // two mandatory printable escapes, must survive serialize → parse
        // both as a value and as an object key.
        for code in (0u32..0x20).chain(['"' as u32, '\\' as u32]) {
            let c = char::from_u32(code).unwrap();
            let original = format!("a{c}z");
            let encoded = Json::Str(original.clone()).to_string();
            assert!(
                encoded.bytes().all(|b| b >= 0x20),
                "U+{code:04X} not escaped: {encoded:?}"
            );
            let decoded = Json::parse(&encoded).unwrap();
            assert_eq!(decoded.as_str(), Some(original.as_str()), "U+{code:04X}");

            let obj = Json::Obj(vec![(original.clone(), Json::Bool(true))]);
            let back = Json::parse(&obj.to_string()).unwrap();
            assert_eq!(
                back.get(&original),
                Some(&Json::Bool(true)),
                "key U+{code:04X}"
            );
        }
    }

    #[test]
    fn control_characters_use_standard_short_escapes() {
        assert_eq!(
            Json::Str("\u{08}\u{0C}\n\r\t".into()).to_string(),
            r#""\b\f\n\r\t""#
        );
        assert_eq!(
            Json::Str("\u{00}\u{1f}".into()).to_string(),
            "\"\\u0000\\u001f\""
        );
        assert_eq!(Json::Str("\"\\".into()).to_string(), r#""\"\\""#);
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(Json::parse(r#""ü末""#).unwrap().as_str(), Some("ü末"));
        // 😀 = U+1F600 = 😀.
        assert_eq!(Json::parse(r#""😀""#).unwrap().as_str(), Some("\u{1F600}"));
        assert!(Json::parse(r#""\uD83D""#).is_err());
        assert!(Json::parse(r#""\uDE00""#).is_err());
    }

    #[test]
    fn floats_round_trip_losslessly() {
        for n in [
            0.0,
            3.0,
            1.0 / 3.0,
            2.5e-9,
            1e15,
            123456.789,
            f64::MIN_POSITIVE,
        ] {
            let text = Json::Num(n).to_string();
            assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(n), "text {text}");
        }
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "[01abc]",
            "\"\u{01}\"",
            "01",
            "-01",
            "1.",
            "-.5",
            ".5",
            "1e",
            "1e+",
            "-",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn object_order_preserved_and_writes_compact() {
        let v = Json::obj([
            ("ok", Json::Bool(true)),
            ("n", Json::num(2.0)),
            ("name", Json::str("x")),
        ]);
        assert_eq!(v.to_string(), r#"{"ok":true,"n":2,"name":"x"}"#);
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn u64_accessor_guards_range_and_fraction() {
        assert_eq!(Json::Num(5.0).as_u64(), Some(5));
        assert_eq!(Json::Num(5.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
