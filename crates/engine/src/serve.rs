//! The JSON request/response protocol: a transport-agnostic
//! [`Dispatcher`] plus the thin stdin/stdout driver ([`serve`]).
//!
//! Every transport shares one dispatch path: a request [`Json`] object
//! goes into [`Dispatcher::dispatch`], a response object comes out
//! (always, `"ok"` tells success from failure). The stdin/stdout loop
//! below, the length-prefixed TCP framing and the HTTP/1.1 adapter in
//! `pclabel-net` are all ~equal-thickness shells over that one function,
//! which is why `pclabel-serve` and `pclabel-netd` produce byte-identical
//! response JSON for the same request stream.
//!
//! ## Requests
//!
//! ```text
//! {"op":"register","dataset":"d","csv":"a,b\n1,2\n","bound":50}
//! {"op":"register","dataset":"d2","generator":"figure2","label_attrs":["age group","marital status"]}
//! {"op":"query","dataset":"d","id":"q1","patterns":[{"a":"1"},{"a":"1","b":"2"}]}
//! {"op":"estimate_multi","patterns":[{"a":"1"}],"strategy":"min_estimate"}
//! {"op":"append_rows","dataset":"d","rows":[["1","2"],["3",null]]}
//! {"op":"refresh","dataset":"d","bound":100}
//! {"op":"stats","dataset":"d"}
//! {"op":"list"}
//! {"op":"health"}
//! {"op":"drop","dataset":"d"}
//! ```
//!
//! A register/refresh takes either `"label_attrs"` (explicit attribute
//! names for `S`) or `"bound"` (run the top-down search with size bound
//! `B_s`; default 50 when neither is given). Pattern objects map
//! attribute names to value labels; JSON numbers are coerced to their
//! canonical label text (`{"age":1}` ≡ `{"age":"1"}`).
//!
//! `append_rows` ingests a batch of new rows into a registered dataset
//! **without re-counting the existing rows**: `"rows"` is an array of
//! arrays, one cell per attribute in schema order (`null` = missing,
//! numbers coerced like pattern values). Unless a row carries a value
//! that is new *on one of the label's subset-`S` attributes* (which
//! changes the packed-key layout), the label updates incrementally —
//! only the `PC` count shards the new rows touch are rewritten,
//! reported as `"touched_shards"` with `"incremental": true`; new
//! values on attributes outside `S` just extend the `VC` table.
//! Otherwise the label is rebuilt over its current subset
//! (`"incremental": false`). Either way the generation bumps and stale
//! cache entries are dropped (shard-locally on the incremental path).
//!
//! `estimate_multi` answers each pattern by combining the estimates of
//! *several* registered datasets' labels (the paper's multi-label
//! future-work direction, `pclabel_core::multi`): `"datasets"` names the
//! participants (default: all registered, sorted by name) and
//! `"strategy"` is one of `"most_specific"` (default), `"min_estimate"`
//! or `"geometric_mean"`.
//!
//! For the stdin/stdout driver, each input line is one request and each
//! output line is one response; blank lines are skipped. It is std-only —
//! no network dependencies — so it composes with anything that can pipe:
//! interactive profiling (`pclabel-serve` under a REPL), bulk audit
//! replay (`pclabel-serve < audit.jsonl`), or a parent process speaking
//! over pipes.

use std::io::{self, BufRead, Write};
use std::sync::Arc;

use pclabel_core::attrset::AttrSet;
use pclabel_core::multi::{combine, CombineStrategy, LabeledEstimate};
use pclabel_core::pattern::Pattern;
use pclabel_data::csv::{read_dataset_from_str, CsvOptions};
use pclabel_data::dataset::Dataset;
use pclabel_data::generate::figure2_sample;
use pclabel_telemetry::{
    series_key, tracked_op_index, MetricSnapshot, Phase, RetainedTrace, SnapshotValue, Telemetry,
    Trace,
};

use crate::json::Json;
use crate::query::{label_answer, Engine, EngineConfig, PatternSpec, QueryRequest};
use crate::store::{EngineError, EntryMemory, LabelPolicy, StoreEntry};

/// The workspace version baked into `pclabel_build_info`, `health` and
/// `server_stats` responses.
pub const BUILD_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Counters returned by [`serve`] when the input is exhausted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests processed (including failed ones).
    pub requests: u64,
    /// Requests answered with `"ok": false`.
    pub errors: u64,
}

/// The transport-agnostic dispatch core: owns the [`Engine`] (and with
/// it the `LabelStore`) plus the [`Telemetry`] plane, and maps one
/// request [`Json`] to one response [`Json`]. `&Dispatcher` is
/// `Send + Sync`, so network transports share a single dispatcher across
/// worker threads behind an `Arc`.
#[derive(Debug)]
pub struct Dispatcher {
    engine: Engine,
    telemetry: Arc<Telemetry>,
}

impl Default for Dispatcher {
    fn default() -> Self {
        Dispatcher::new(Engine::default())
    }
}

impl Dispatcher {
    /// Wraps an engine (and its store) as the shared dispatch core, with
    /// telemetry enabled at its defaults.
    pub fn new(engine: Engine) -> Self {
        Dispatcher {
            engine,
            telemetry: Telemetry::new(),
        }
    }

    /// A dispatcher over a fresh engine with the given tuning.
    pub fn with_config(config: EngineConfig) -> Self {
        Dispatcher::new(Engine::new(config))
    }

    /// A dispatcher over a fresh engine with an explicit telemetry
    /// facade (a configured logger, or [`Telemetry::disabled`]).
    pub fn with_telemetry(config: EngineConfig, telemetry: Arc<Telemetry>) -> Self {
        Dispatcher::with_engine(Engine::new(config), telemetry)
    }

    /// A dispatcher over a caller-built engine (e.g. one whose store was
    /// recovered and wired by [`crate::durability::Durability::open`])
    /// with an explicit telemetry facade.
    pub fn with_engine(engine: Engine, telemetry: Arc<Telemetry>) -> Self {
        Dispatcher { engine, telemetry }
    }

    /// The underlying engine (store access for setup/inspection).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The telemetry plane (transports register their own families in
    /// its registry so one scrape covers the whole process).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Handles one raw request line (parse + dispatch), always returning
    /// a response object. Unparseable lines count as `"other"` errors.
    pub fn dispatch_line(&self, line: &str) -> Json {
        match Json::parse(line) {
            Ok(request) => self.dispatch(&request),
            Err(e) => {
                let trace = self.telemetry.begin("other");
                let response = error_response(None, &format!("invalid JSON: {e}"));
                self.telemetry.finish(&trace, false);
                response
            }
        }
    }

    /// Routes one parsed request to its op handler, always returning a
    /// response object. Every dispatch is traced: request/error counters
    /// and latency histograms advance per op, and phase spans recorded
    /// by the store/query layers fold into the phase histograms.
    pub fn dispatch(&self, request: &Json) -> Json {
        let op = request.get("op").and_then(Json::as_str).map(str::to_string);
        let trace = self.telemetry.begin(op.as_deref().unwrap_or("other"));
        if trace.enabled() {
            // Annotations ride the trace into the retained ring so a
            // slow-query id can be tied back to its dataset and batch
            // size from `/debug/traces` alone.
            if let Some(name) = request.get("dataset").and_then(Json::as_str) {
                trace.annotate_dataset(name);
            }
            if let Some(items) = request
                .get("patterns")
                .or_else(|| request.get("rows"))
                .and_then(Json::as_array)
            {
                trace.record_items(items.len() as u64);
            }
        }
        let response = self.dispatch_traced(request, op.as_deref(), &trace);
        let ok = response.get("ok").and_then(Json::as_bool) == Some(true);
        if trace.enabled() {
            if let Some(rows) = response.get("rows").and_then(Json::as_u64) {
                trace.record_rows(rows);
            }
        }
        self.telemetry.finish(&trace, ok);
        response
    }

    fn dispatch_traced(&self, request: &Json, op: Option<&str>, trace: &Trace) -> Json {
        let engine = &self.engine;
        // Hand handlers `None` when telemetry is off so they skip their
        // own clock reads, not just the recording.
        let trace = trace.enabled().then_some(trace);
        match op {
            Some("register") => handle_register(engine, request, trace),
            Some("query") => handle_query(engine, request, trace),
            Some("estimate_multi") => handle_estimate_multi(engine, request),
            Some("append_rows") => handle_append_rows(engine, request, trace),
            Some("refresh") => handle_refresh(engine, request, trace),
            Some("stats") => handle_stats(engine, request),
            Some("list") => handle_list(engine),
            Some("health") => handle_health(engine, &self.telemetry),
            Some("server_stats") => self.handle_server_stats(),
            Some("server_debug") => self.server_debug_json(request),
            Some("drop") => handle_drop(engine, request),
            Some(other) => error_response(Some(other), &format!("unknown op {other:?}")),
            None => error_response(None, "missing \"op\" field"),
        }
    }

    /// Per-dataset cache introspection rows, shared by the JSON and
    /// Prometheus exposures.
    fn cache_rows(&self) -> Vec<(String, u64, u64, u64, u64)> {
        self.engine
            .store()
            .list()
            .iter()
            .map(|entry| {
                let stats = entry.cache().stats();
                (
                    entry.name().to_string(),
                    entry.cache().len() as u64,
                    stats.hits(),
                    stats.misses(),
                    stats.invalidations(),
                )
            })
            .collect()
    }

    /// Per-dataset deep-memory rows (shared by `/debug/memory`, the
    /// `stats` op and the `pclabel_dataset_bytes` gauges).
    fn memory_rows(&self) -> Vec<(String, EntryMemory)> {
        self.engine
            .store()
            .list()
            .iter()
            .map(|entry| (entry.name().to_string(), entry.memory()))
            .collect()
    }

    /// `/debug/traces`: retained request traces as JSON. `op` narrows to
    /// one tracked op, `slowest` reads the slowest-N ring instead of the
    /// most-recent ring, and `id` retrieves a single trace by the
    /// request id printed in slow-query warn lines.
    pub fn debug_traces_json(&self, op: Option<&str>, slowest: bool, id: Option<u64>) -> Json {
        let retention = self.telemetry.retention();
        let traces: Vec<Arc<RetainedTrace>> = if let Some(id) = id {
            retention.find(id).into_iter().collect()
        } else if let Some(op) = op {
            let Some(index) = tracked_op_index(op) else {
                return error_response(Some("server_debug"), &format!("unknown op {op:?}"));
            };
            if slowest {
                retention.slowest(index)
            } else {
                retention.recent(index)
            }
        } else {
            retention.all(slowest)
        };
        let ring = if id.is_some() {
            "find"
        } else if slowest {
            "slowest"
        } else {
            "recent"
        };
        Json::obj([
            ("ok", Json::Bool(true)),
            ("op", Json::str("server_debug")),
            ("section", Json::str("traces")),
            ("retained_per_op", Json::num(retention.capacity() as f64)),
            ("ring", Json::str(ring)),
            (
                "traces",
                Json::Arr(traces.iter().map(|t| retained_trace_json(t)).collect()),
            ),
        ])
    }

    /// `/debug/memory`: deep heap accounting — per-dataset component
    /// breakdowns plus the process-wide total. The same bytes back the
    /// `pclabel_dataset_bytes` gauges and the `stats` op's `memory`
    /// object, so the three exposures can be cross-checked.
    pub fn debug_memory_json(&self) -> Json {
        let rows = self.memory_rows();
        let total: u64 = rows.iter().map(|(_, m)| m.total()).sum();
        let datasets: Vec<Json> = rows
            .iter()
            .map(|(name, memory)| {
                let components: Vec<(String, Json)> = memory
                    .components()
                    .iter()
                    .map(|(component, bytes)| (component.to_string(), Json::num(*bytes as f64)))
                    .collect();
                Json::obj([
                    ("dataset", Json::str(name)),
                    ("total_bytes", Json::num(memory.total() as f64)),
                    ("components", Json::Obj(components)),
                ])
            })
            .collect();
        Json::obj([
            ("ok", Json::Bool(true)),
            ("op", Json::str("server_debug")),
            ("section", Json::str("memory")),
            ("total_bytes", Json::num(total as f64)),
            ("datasets", Json::Arr(datasets)),
        ])
    }

    /// `{"op":"server_debug"}`: every dispatcher-side introspection
    /// section in one response. `"trace_op"`, `"slowest"` and `"id"`
    /// filter the traces section like the `/debug/traces` query
    /// parameters. Connection state lives in the transport, not here —
    /// the network servers splice their `"conns"` section into this
    /// object at the route layer.
    pub fn server_debug_json(&self, request: &Json) -> Json {
        let trace_op = request.get("trace_op").and_then(Json::as_str);
        let slowest = request
            .get("slowest")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        let id = request.get("id").and_then(Json::as_u64);
        let traces = self.debug_traces_json(trace_op, slowest, id);
        if traces.get("ok") != Some(&Json::Bool(true)) {
            return traces;
        }
        Json::obj([
            ("ok", Json::Bool(true)),
            ("op", Json::str("server_debug")),
            ("uptime_seconds", Json::num(self.telemetry.uptime_secs())),
            ("version", Json::str(BUILD_VERSION)),
            ("traces", traces),
            ("memory", self.debug_memory_json()),
        ])
    }

    /// `server_stats`: the whole metric registry as JSON — the framed
    /// protocol's equivalent of `GET /metrics`. Counters and gauges are
    /// flat `series → value` objects keyed like Prometheus series;
    /// histograms report count/sum and p50/p95/p99; `cache` carries the
    /// per-dataset hit/miss/invalidation rows.
    fn handle_server_stats(&self) -> Json {
        let snapshot = self.telemetry.registry().snapshot();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for series in &snapshot {
            let key = series_key(&series.name, &series.labels);
            match &series.value {
                SnapshotValue::Counter(v) => counters.push((key, Json::num(*v as f64))),
                SnapshotValue::Gauge(v) => gauges.push((key, Json::num(*v as f64))),
                SnapshotValue::Histogram {
                    count,
                    sum_secs,
                    p50,
                    p95,
                    p99,
                    ..
                } => histograms.push((
                    key,
                    Json::obj([
                        ("count", Json::num(*count as f64)),
                        ("sum_secs", Json::num(*sum_secs)),
                        ("p50_secs", Json::num(*p50)),
                        ("p95_secs", Json::num(*p95)),
                        ("p99_secs", Json::num(*p99)),
                    ]),
                )),
            }
        }
        let cache: Vec<Json> = self
            .cache_rows()
            .into_iter()
            .map(|(dataset, entries, hits, misses, invalidations)| {
                Json::obj([
                    ("dataset", Json::str(&dataset)),
                    ("entries", Json::num(entries as f64)),
                    ("hits", Json::num(hits as f64)),
                    ("misses", Json::num(misses as f64)),
                    ("invalidations", Json::num(invalidations as f64)),
                ])
            })
            .collect();
        let mut members = vec![
            ("ok".to_string(), Json::Bool(true)),
            ("op".to_string(), Json::str("server_stats")),
            (
                "telemetry_enabled".to_string(),
                Json::Bool(self.telemetry.is_enabled()),
            ),
            (
                "uptime_seconds".to_string(),
                Json::num(self.telemetry.uptime_secs()),
            ),
            ("version".to_string(), Json::str(BUILD_VERSION)),
            ("counters".to_string(), Json::Obj(counters)),
            ("gauges".to_string(), Json::Obj(gauges)),
            ("histograms".to_string(), Json::Obj(histograms)),
            ("cache".to_string(), Json::Arr(cache)),
        ];
        if let Some(durability) = self.engine.durability() {
            let stats = durability.stats();
            members.push((
                "durability".to_string(),
                Json::obj([
                    ("data_dir", Json::str(stats.data_dir.display().to_string())),
                    ("fsync", Json::str(stats.fsync.to_string())),
                    ("last_lsn", Json::num(stats.last_lsn as f64)),
                    ("snapshot_lsn", Json::num(stats.snapshot_lsn as f64)),
                    ("snapshot_age_seconds", Json::num(stats.snapshot_age_secs)),
                    ("wal_bytes", Json::num(stats.wal_bytes as f64)),
                    ("wal_segments", Json::num(stats.segments as f64)),
                    ("snapshots", Json::num(stats.snapshots as f64)),
                ]),
            ));
            members.push(("health".to_string(), health_json(durability.health())));
        }
        Json::Obj(members)
    }

    /// Renders the registry plus the per-dataset cache families in the
    /// Prometheus text exposition format — the `GET /metrics` body.
    pub fn metrics_text(&self) -> String {
        let mut snapshot = self.telemetry.registry().snapshot();
        for (dataset, entries, hits, misses, invalidations) in self.cache_rows() {
            let labels = vec![("dataset".to_string(), dataset)];
            snapshot.push(MetricSnapshot {
                name: "pclabel_cache_entries".to_string(),
                help: "Pattern-cache entries currently held, per dataset.".to_string(),
                labels: labels.clone(),
                value: SnapshotValue::Gauge(entries),
            });
            snapshot.push(MetricSnapshot {
                name: "pclabel_cache_hits_total".to_string(),
                help: "Pattern-cache hits since the last refresh, per dataset.".to_string(),
                labels: labels.clone(),
                value: SnapshotValue::Counter(hits),
            });
            snapshot.push(MetricSnapshot {
                name: "pclabel_cache_misses_total".to_string(),
                help: "Pattern-cache misses since the last refresh, per dataset.".to_string(),
                labels: labels.clone(),
                value: SnapshotValue::Counter(misses),
            });
            snapshot.push(MetricSnapshot {
                name: "pclabel_cache_invalidations_total".to_string(),
                help: "Pattern-cache entries dropped by refresh/append invalidation, per dataset."
                    .to_string(),
                labels,
                value: SnapshotValue::Counter(invalidations),
            });
        }
        snapshot.push(MetricSnapshot {
            name: "pclabel_build_info".to_string(),
            help: "Constant 1, labeled with the server build version.".to_string(),
            labels: vec![("version".to_string(), BUILD_VERSION.to_string())],
            value: SnapshotValue::Gauge(1),
        });
        for (dataset, memory) in self.memory_rows() {
            for (component, bytes) in memory.components() {
                snapshot.push(MetricSnapshot {
                    name: "pclabel_dataset_bytes".to_string(),
                    help: "Deep heap bytes held per dataset, by component.".to_string(),
                    labels: vec![
                        ("dataset".to_string(), dataset.clone()),
                        ("component".to_string(), component.to_string()),
                    ],
                    value: SnapshotValue::Gauge(bytes),
                });
            }
        }
        pclabel_telemetry::render_prometheus(&snapshot)
    }
}

/// Runs the request/response loop until `input` is exhausted. Every
/// request line produces exactly one response line on `output`. This is
/// the stdin/stdout transport; it contains no protocol logic of its own —
/// everything goes through [`Dispatcher::dispatch_line`].
pub fn serve<R: BufRead, W: Write>(
    dispatcher: &Dispatcher,
    input: R,
    mut output: W,
) -> io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    for line in input.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        summary.requests += 1;
        let response = dispatcher.dispatch_line(line);
        if response.get("ok").and_then(Json::as_bool) != Some(true) {
            summary.errors += 1;
        }
        writeln!(output, "{response}")?;
        output.flush()?;
    }
    Ok(summary)
}

/// One retained trace as a JSON object: identity, outcome, wall time,
/// annotations and the per-phase span breakdown (zero-duration phases
/// are omitted, matching the slow-query log line).
fn retained_trace_json(t: &RetainedTrace) -> Json {
    let spans: Vec<Json> = Phase::ALL
        .iter()
        .filter(|p| t.phase_secs[**p as usize] > 0.0)
        .map(|p| {
            Json::obj([
                ("phase", Json::str(p.span_name())),
                ("ms", Json::num(t.phase_secs[*p as usize] * 1e3)),
            ])
        })
        .collect();
    let mut members = vec![
        ("request_id".to_string(), Json::num(t.id as f64)),
        ("op".to_string(), Json::str(t.op)),
        ("ok".to_string(), Json::Bool(t.ok)),
        ("elapsed_ms".to_string(), Json::num(t.elapsed_secs * 1e3)),
        ("spans".to_string(), Json::Arr(spans)),
    ];
    if let Some(dataset) = &t.dataset {
        members.push(("dataset".to_string(), Json::str(&**dataset)));
    }
    if t.items > 0 {
        members.push(("items".to_string(), Json::num(t.items as f64)));
    }
    if t.rows > 0 {
        members.push(("rows".to_string(), Json::num(t.rows as f64)));
    }
    if t.peak_bytes > 0 {
        members.push(("peak_bytes".to_string(), Json::num(t.peak_bytes as f64)));
    }
    Json::Obj(members)
}

fn error_response(op: Option<&str>, message: &str) -> Json {
    let mut members = vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::str(message)),
    ];
    if let Some(op) = op {
        members.push(("op".to_string(), Json::str(op)));
    }
    Json::Obj(members)
}

fn engine_error(op: &str, e: &EngineError) -> Json {
    // Degraded mode gets a typed shape — `error` is the stable string
    // `"degraded"` so clients and the HTTP adapter can branch on it
    // (503, retry-after-heal) without parsing prose; the root cause
    // rides in `reason`.
    if let EngineError::Degraded(reason) = e {
        return Json::obj([
            ("ok", Json::Bool(false)),
            ("error", Json::str("degraded")),
            ("reason", Json::str(reason)),
            ("op", Json::str(op)),
        ]);
    }
    error_response(Some(op), &e.to_string())
}

/// The `health` section shared by the `health` and `server_stats` ops.
fn health_json(health: &crate::health::Health) -> Json {
    let snap = health.snapshot();
    Json::obj([
        (
            "state",
            Json::str(if snap.degraded { "degraded" } else { "ok" }),
        ),
        (
            "reason",
            snap.reason.as_deref().map(Json::str).unwrap_or(Json::Null),
        ),
        ("degraded_for_seconds", Json::num(snap.degraded_for_secs)),
        (
            "degraded_seconds_total",
            Json::num(snap.degraded_total_secs),
        ),
        (
            "recovery_attempts",
            Json::num(snap.recovery_attempts as f64),
        ),
    ])
}

fn require_dataset_name(request: &Json) -> Result<String, String> {
    request
        .get("dataset")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| "missing \"dataset\" field".to_string())
}

/// Resolves `"label_attrs"` / `"bound"` into a [`LabelPolicy`] against a
/// dataset's schema (default: search with bound 50). An optional
/// `"refine": false` on search policies forces the cold per-candidate
/// evaluator (bit-identical label; ablation/debugging only).
fn resolve_policy(request: &Json, dataset: &Dataset) -> Result<LabelPolicy, String> {
    // Validate `refine` up front so a malformed value is rejected
    // uniformly, whichever policy shape the request uses (it only
    // *applies* to search policies).
    let refine = match request.get("refine") {
        None => true,
        Some(Json::Bool(b)) => *b,
        Some(_) => return Err("\"refine\" must be a boolean".to_string()),
    };
    if let Some(names) = request.get("label_attrs") {
        let names = names
            .as_array()
            .ok_or_else(|| "\"label_attrs\" must be an array of attribute names".to_string())?;
        let mut attrs = AttrSet::EMPTY;
        for name in names {
            let name = name
                .as_str()
                .ok_or_else(|| "\"label_attrs\" entries must be strings".to_string())?;
            let index = dataset
                .schema()
                .index_of(name)
                .ok_or_else(|| format!("unknown attribute {name:?}"))?;
            attrs = attrs.insert(index);
        }
        return Ok(LabelPolicy::Attrs(attrs));
    }
    if let Some(bound) = request.get("bound") {
        let bound = bound
            .as_u64()
            .ok_or_else(|| "\"bound\" must be a non-negative integer".to_string())?;
        return Ok(LabelPolicy::Search { bound, refine });
    }
    Ok(LabelPolicy::Search { bound: 50, refine })
}

fn load_dataset(request: &Json, name: &str) -> Result<Dataset, String> {
    if let Some(csv) = request.get("csv") {
        let csv = csv
            .as_str()
            .ok_or_else(|| "\"csv\" must be a string".to_string())?;
        return read_dataset_from_str(csv, &CsvOptions::default())
            .map(|d| d.with_name(name))
            .map_err(|e| e.to_string());
    }
    match request.get("generator").and_then(Json::as_str) {
        Some("figure2") => Ok(figure2_sample().with_name(name)),
        Some(other) => Err(format!(
            "unknown generator {other:?} (supported: \"figure2\")"
        )),
        None => Err("register needs \"csv\" or \"generator\"".to_string()),
    }
}

fn entry_summary(entry: &StoreEntry) -> Vec<(String, Json)> {
    // One snapshot so label fields and generation can never mix versions
    // when a refresh or append lands mid-summary.
    let (_dataset, label, generation) = entry.snapshot();
    vec![
        ("dataset".to_string(), Json::str(entry.name())),
        ("rows".to_string(), Json::num(label.n_rows() as f64)),
        (
            "label_attrs".to_string(),
            Json::Arr(
                StoreEntry::attr_names(&label)
                    .into_iter()
                    .map(Json::Str)
                    .collect(),
            ),
        ),
        (
            "label_size".to_string(),
            Json::num(label.pattern_count_size() as f64),
        ),
        (
            "vc_size".to_string(),
            Json::num(label.value_count_size() as f64),
        ),
        (
            "count_shards".to_string(),
            Json::num(label.count_shards() as f64),
        ),
        ("generation".to_string(), Json::num(generation as f64)),
    ]
}

fn handle_register(engine: &Engine, request: &Json, trace: Option<&Trace>) -> Json {
    let name = match require_dataset_name(request) {
        Ok(n) => n,
        Err(e) => return error_response(Some("register"), &e),
    };
    let dataset = match load_dataset(request, &name) {
        Ok(d) => d,
        Err(e) => return error_response(Some("register"), &e),
    };
    let policy = match resolve_policy(request, &dataset) {
        Ok(p) => p,
        Err(e) => return error_response(Some("register"), &e),
    };
    match engine.store().register_traced(name, dataset, policy, trace) {
        Ok(entry) => {
            let mut members = vec![
                ("ok".to_string(), Json::Bool(true)),
                ("op".to_string(), Json::str("register")),
            ];
            members.extend(entry_summary(&entry));
            Json::Obj(members)
        }
        Err(e) => engine_error("register", &e),
    }
}

/// Coerces one pattern-term value to its label text.
fn term_value(value: &Json) -> Option<String> {
    match value {
        Json::Str(s) => Some(s.clone()),
        Json::Num(_) => Some(value.to_string()),
        _ => None,
    }
}

/// Parses the request's `"patterns"` array into specs (shared by the
/// `query` and `estimate_multi` ops).
fn parse_pattern_specs(request: &Json) -> Result<Vec<PatternSpec>, String> {
    let patterns = request
        .get("patterns")
        .and_then(Json::as_array)
        .ok_or_else(|| "missing \"patterns\" array".to_string())?;
    let mut specs = Vec::with_capacity(patterns.len());
    for (i, pattern) in patterns.iter().enumerate() {
        let Some(members) = pattern.as_object() else {
            return Err(format!("pattern {i} must be an object of attr → value"));
        };
        let mut terms = Vec::with_capacity(members.len());
        for (attr, value) in members {
            let Some(value) = term_value(value) else {
                return Err(format!(
                    "pattern {i}: value of {attr:?} must be a string or number"
                ));
            };
            terms.push((attr.clone(), value));
        }
        specs.push(PatternSpec { terms });
    }
    Ok(specs)
}

fn handle_query(engine: &Engine, request: &Json, trace: Option<&Trace>) -> Json {
    let dataset = match require_dataset_name(request) {
        Ok(n) => n,
        Err(e) => return error_response(Some("query"), &e),
    };
    let specs = match parse_pattern_specs(request) {
        Ok(s) => s,
        Err(e) => return error_response(Some("query"), &e),
    };
    let query = QueryRequest {
        id: request.get("id").and_then(Json::as_str).map(str::to_string),
        dataset,
        patterns: specs,
    };
    match engine.execute_traced(&query, trace) {
        Ok(response) => {
            let results: Vec<Json> = response
                .results
                .iter()
                .map(|r| match &r.error {
                    Some(e) => Json::obj([("error", Json::str(e))]),
                    None => Json::obj([
                        ("estimate", Json::num(r.estimate)),
                        ("exact", Json::Bool(r.exact)),
                        ("cached", Json::Bool(r.cached)),
                    ]),
                })
                .collect();
            let stats = Json::obj([
                ("exact", Json::num(response.stats.exact as f64)),
                ("estimated", Json::num(response.stats.estimated as f64)),
                ("cache_hits", Json::num(response.stats.cache_hits as f64)),
                (
                    "cache_misses",
                    Json::num(response.stats.cache_misses as f64),
                ),
                ("failed", Json::num(response.stats.failed as f64)),
            ]);
            let mut members = vec![
                ("ok".to_string(), Json::Bool(true)),
                ("op".to_string(), Json::str("query")),
            ];
            if let Some(id) = &response.id {
                members.push(("id".to_string(), Json::str(id)));
            }
            members.push(("dataset".to_string(), Json::str(&response.dataset)));
            members.push(("rows".to_string(), Json::num(response.n_rows as f64)));
            members.push((
                "label_attrs".to_string(),
                Json::Arr(response.label_attrs.into_iter().map(Json::Str).collect()),
            ));
            members.push((
                "generation".to_string(),
                Json::num(response.generation as f64),
            ));
            members.push(("results".to_string(), Json::Arr(results)));
            members.push(("stats".to_string(), stats));
            Json::Obj(members)
        }
        Err(e) => engine_error("query", &e),
    }
}

/// `estimate_multi`: answer each pattern by combining the estimates of
/// several registered datasets' labels under a
/// [`CombineStrategy`](pclabel_core::multi::CombineStrategy).
///
/// Per pattern, every participating dataset whose schema resolves the
/// pattern contributes a [`LabeledEstimate`] (exact `PC` projection when
/// `Attr(p) ⊆ S`, `Label::estimate` otherwise); datasets that cannot
/// resolve it are skipped and a pattern no dataset resolves fails
/// individually. Label snapshots are taken once per request, so every
/// result in a response is answered against one consistent set of
/// `(label, generation)` pairs.
fn handle_estimate_multi(engine: &Engine, request: &Json) -> Json {
    let strategy = match request.get("strategy") {
        None => CombineStrategy::default(),
        Some(v) => {
            let Some(name) = v.as_str().and_then(CombineStrategy::from_name) else {
                return error_response(
                    Some("estimate_multi"),
                    "\"strategy\" must be one of \"most_specific\", \"min_estimate\", \
                     \"geometric_mean\"",
                );
            };
            name
        }
    };
    let entries = match request.get("datasets") {
        None => engine.store().list(),
        Some(names) => {
            let Some(names) = names.as_array() else {
                return error_response(
                    Some("estimate_multi"),
                    "\"datasets\" must be an array of dataset names",
                );
            };
            let mut entries = Vec::with_capacity(names.len());
            for name in names {
                let Some(name) = name.as_str() else {
                    return error_response(
                        Some("estimate_multi"),
                        "\"datasets\" entries must be strings",
                    );
                };
                // A duplicate would double-count one label and silently
                // skew min/geometric-mean combinations.
                if entries.iter().any(|e: &Arc<StoreEntry>| e.name() == name) {
                    return error_response(
                        Some("estimate_multi"),
                        &format!("duplicate dataset {name:?} in \"datasets\""),
                    );
                }
                match engine.store().get(name) {
                    Ok(entry) => entries.push(entry),
                    Err(e) => return engine_error("estimate_multi", &e),
                }
            }
            entries
        }
    };
    if entries.is_empty() {
        return error_response(Some("estimate_multi"), "no datasets registered");
    }
    let specs = match parse_pattern_specs(request) {
        Ok(s) => s,
        Err(e) => return error_response(Some("estimate_multi"), &e),
    };

    // One consistent (dataset, label, generation) snapshot per dataset
    // for the whole batch.
    let snapshots: Vec<_> = entries
        .iter()
        .map(|entry| {
            let (dataset, label, generation) = entry.snapshot();
            (entry, dataset, label, generation)
        })
        .collect();

    let mut results = Vec::with_capacity(specs.len());
    for spec in &specs {
        let terms: Vec<(&str, &str)> = spec
            .terms
            .iter()
            .map(|(a, v)| (a.as_str(), v.as_str()))
            .collect();
        let mut parts = Vec::new();
        let mut sources = Vec::new();
        for (entry, dataset, label, generation) in &snapshots {
            let Ok(pattern) = Pattern::parse(dataset, &terms) else {
                continue;
            };
            let (estimate, exact) = label_answer(label, &pattern);
            parts.push(LabeledEstimate {
                overlap: label.attrs().intersect(pattern.attrs()).len(),
                size: label.pattern_count_size(),
                estimate,
            });
            sources.push(Json::obj([
                ("dataset", Json::str(entry.name())),
                ("estimate", Json::num(estimate)),
                ("exact", Json::Bool(exact)),
                ("generation", Json::num(*generation as f64)),
            ]));
        }
        if parts.is_empty() {
            results.push(Json::obj([(
                "error",
                Json::str("pattern resolved against no participating dataset"),
            )]));
        } else {
            results.push(Json::obj([
                ("estimate", Json::num(combine(&parts, strategy))),
                ("sources", Json::Arr(sources)),
            ]));
        }
    }

    let mut members = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("op".to_string(), Json::str("estimate_multi")),
    ];
    if let Some(id) = request.get("id").and_then(Json::as_str) {
        members.push(("id".to_string(), Json::str(id)));
    }
    members.push(("strategy".to_string(), Json::str(strategy.name())));
    members.push((
        "datasets".to_string(),
        Json::Arr(
            snapshots
                .iter()
                .map(|(entry, _, _, _)| Json::str(entry.name()))
                .collect(),
        ),
    ));
    members.push(("results".to_string(), Json::Arr(results)));
    Json::Obj(members)
}

/// `health`: a cheap liveness probe (also the `GET /healthz` body in the
/// HTTP transport), carrying uptime and build version so a probe can
/// tell a restart from a hang. When the durability plane has flipped the
/// store into read-only degraded mode, `status` becomes `"degraded"`
/// (the HTTP adapter turns that into a 503) and a `health` section
/// carries the root cause and recovery progress.
fn handle_health(engine: &Engine, telemetry: &Telemetry) -> Json {
    let health = engine.durability().map(|d| Arc::clone(d.health()));
    let degraded = health.as_ref().map(|h| h.is_degraded()).unwrap_or(false);
    let mut members = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("op".to_string(), Json::str("health")),
        (
            "status".to_string(),
            Json::str(if degraded { "degraded" } else { "ok" }),
        ),
        (
            "datasets".to_string(),
            Json::num(engine.store().len() as f64),
        ),
        (
            "uptime_seconds".to_string(),
            Json::num(telemetry.uptime_secs()),
        ),
        ("version".to_string(), Json::str(BUILD_VERSION)),
    ];
    if let Some(health) = &health {
        members.push(("health".to_string(), health_json(health)));
    }
    Json::Obj(members)
}

/// Parses the `"rows"` array of an `append_rows` request: arrays of
/// cells in schema order, `null` marking missing and numbers coerced to
/// their canonical label text (like pattern values).
fn parse_append_rows(request: &Json) -> Result<Vec<Vec<Option<String>>>, String> {
    let rows = request
        .get("rows")
        .and_then(Json::as_array)
        .ok_or_else(|| "missing \"rows\" array".to_string())?;
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let Some(cells) = row.as_array() else {
            return Err(format!("row {i} must be an array of cell values"));
        };
        let mut parsed = Vec::with_capacity(cells.len());
        for (j, cell) in cells.iter().enumerate() {
            match cell {
                Json::Null => parsed.push(None),
                Json::Str(s) => parsed.push(Some(s.clone())),
                Json::Num(_) => parsed.push(Some(cell.to_string())),
                _ => return Err(format!("row {i} cell {j} must be a string, number or null")),
            }
        }
        out.push(parsed);
    }
    Ok(out)
}

/// `append_rows`: fold a batch of new rows into a registered dataset and
/// its label (incrementally when the schema is stable — see
/// [`crate::store::LabelStore::append_rows`]).
fn handle_append_rows(engine: &Engine, request: &Json, trace: Option<&Trace>) -> Json {
    let name = match require_dataset_name(request) {
        Ok(n) => n,
        Err(e) => return error_response(Some("append_rows"), &e),
    };
    let rows = match parse_append_rows(request) {
        Ok(r) => r,
        Err(e) => return error_response(Some("append_rows"), &e),
    };
    match engine.store().append_rows_traced(&name, &rows, trace) {
        Ok(report) => Json::obj([
            ("ok", Json::Bool(true)),
            ("op", Json::str("append_rows")),
            ("dataset", Json::str(&name)),
            ("appended", Json::num(report.appended as f64)),
            ("rows", Json::num(report.total_rows as f64)),
            ("generation", Json::num(report.generation as f64)),
            ("incremental", Json::Bool(report.incremental)),
            (
                "touched_shards",
                Json::Arr(
                    report
                        .touched_shards
                        .iter()
                        .map(|&s| Json::num(s as f64))
                        .collect(),
                ),
            ),
        ]),
        Err(e) => engine_error("append_rows", &e),
    }
}

fn handle_refresh(engine: &Engine, request: &Json, trace: Option<&Trace>) -> Json {
    let name = match require_dataset_name(request) {
        Ok(n) => n,
        Err(e) => return error_response(Some("refresh"), &e),
    };
    let entry = match engine.store().get(&name) {
        Ok(e) => e,
        Err(e) => return engine_error("refresh", &e),
    };
    let policy = match resolve_policy(request, &entry.dataset()) {
        Ok(p) => p,
        Err(e) => return error_response(Some("refresh"), &e),
    };
    match engine.store().refresh_traced(&name, policy, trace) {
        Ok(_generation) => {
            let mut members = vec![
                ("ok".to_string(), Json::Bool(true)),
                ("op".to_string(), Json::str("refresh")),
            ];
            members.extend(entry_summary(&entry));
            Json::Obj(members)
        }
        Err(e) => engine_error("refresh", &e),
    }
}

fn handle_stats(engine: &Engine, request: &Json) -> Json {
    let name = match require_dataset_name(request) {
        Ok(n) => n,
        Err(e) => return error_response(Some("stats"), &e),
    };
    match engine.store().get(&name) {
        Ok(entry) => {
            let cache = Json::obj([
                ("entries", Json::num(entry.cache().len() as f64)),
                ("hits", Json::num(entry.cache().stats().hits() as f64)),
                ("misses", Json::num(entry.cache().stats().misses() as f64)),
                (
                    "invalidations",
                    Json::num(entry.cache().stats().invalidations() as f64),
                ),
            ]);
            let memory = entry.memory();
            let mut memory_members: Vec<(String, Json)> = memory
                .components()
                .iter()
                .map(|(component, bytes)| (component.to_string(), Json::num(*bytes as f64)))
                .collect();
            memory_members.push(("total_bytes".to_string(), Json::num(memory.total() as f64)));
            let mut members = vec![
                ("ok".to_string(), Json::Bool(true)),
                ("op".to_string(), Json::str("stats")),
            ];
            members.extend(entry_summary(&entry));
            // LSN of the WAL record that produced the entry's current
            // state (0 when the server runs without --data-dir).
            members.push((
                "applied_lsn".to_string(),
                Json::num(entry.applied_lsn() as f64),
            ));
            members.push(("cache".to_string(), cache));
            members.push(("memory".to_string(), Json::Obj(memory_members)));
            Json::Obj(members)
        }
        Err(e) => engine_error("stats", &e),
    }
}

fn handle_list(engine: &Engine) -> Json {
    let datasets: Vec<Json> = engine
        .store()
        .list()
        .iter()
        .map(|e| Json::Obj(entry_summary(e)))
        .collect();
    Json::obj([
        ("ok", Json::Bool(true)),
        ("op", Json::str("list")),
        ("datasets", Json::Arr(datasets)),
    ])
}

fn handle_drop(engine: &Engine, request: &Json) -> Json {
    let name = match require_dataset_name(request) {
        Ok(n) => n,
        Err(e) => return error_response(Some("drop"), &e),
    };
    match engine.store().remove(&name) {
        Ok(dropped) => Json::obj([
            ("ok", Json::Bool(true)),
            ("op", Json::str("drop")),
            ("dropped", Json::Bool(dropped)),
        ]),
        Err(e) => error_response(Some("drop"), &e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::EngineConfig;

    fn run_session(lines: &str) -> Vec<Json> {
        let dispatcher = Dispatcher::with_config(EngineConfig::default());
        let mut out = Vec::new();
        let summary = serve(&dispatcher, lines.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let responses: Vec<Json> = text
            .lines()
            .map(|l| Json::parse(l).expect("valid response JSON"))
            .collect();
        assert_eq!(summary.requests as usize, responses.len());
        responses
    }

    #[test]
    fn register_query_session() {
        let responses = run_session(concat!(
            "{\"op\":\"register\",\"dataset\":\"census\",\"generator\":\"figure2\",\"bound\":5}\n",
            "\n",
            "{\"op\":\"query\",\"dataset\":\"census\",\"id\":\"q1\",\"patterns\":[",
            "{\"gender\":\"Female\",\"age group\":\"20-39\",\"marital status\":\"married\"},",
            "{\"age group\":\"20-39\"}]}\n",
            "{\"op\":\"stats\",\"dataset\":\"census\"}\n",
            "{\"op\":\"drop\",\"dataset\":\"census\"}\n",
        ));
        assert_eq!(responses.len(), 4);
        assert_eq!(responses[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            responses[0].get("label_size").and_then(Json::as_u64),
            Some(3)
        );

        let query = &responses[1];
        assert_eq!(query.get("id").and_then(Json::as_str), Some("q1"));
        let results = query.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(results[0].get("estimate").and_then(Json::as_f64), Some(3.0));
        assert_eq!(results[0].get("exact"), Some(&Json::Bool(false)));
        assert_eq!(
            results[1].get("estimate").and_then(Json::as_f64),
            Some(12.0)
        );
        assert_eq!(results[1].get("exact"), Some(&Json::Bool(true)));

        let cache = responses[2].get("cache").unwrap();
        assert_eq!(cache.get("entries").and_then(Json::as_u64), Some(2));
        assert_eq!(responses[3].get("dropped"), Some(&Json::Bool(true)));
    }

    #[test]
    fn register_refine_knob_is_parsed_and_identical() {
        // `"refine": false` (the cold-evaluator ablation) must be
        // accepted and produce the same label as the default path.
        let responses = run_session(concat!(
            "{\"op\":\"register\",\"dataset\":\"a\",\"generator\":\"figure2\",\"bound\":5}\n",
            "{\"op\":\"register\",\"dataset\":\"b\",\"generator\":\"figure2\",\"bound\":5,",
            "\"refine\":false}\n",
            "{\"op\":\"register\",\"dataset\":\"c\",\"generator\":\"figure2\",\"bound\":5,",
            "\"refine\":\"yes\"}\n",
            "{\"op\":\"register\",\"dataset\":\"d\",\"generator\":\"figure2\",",
            "\"label_attrs\":[\"gender\"],\"refine\":\"yes\"}\n",
        ));
        assert_eq!(responses[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(responses[1].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            responses[0].get("label_size"),
            responses[1].get("label_size")
        );
        assert_eq!(
            responses[0].get("label_attrs"),
            responses[1].get("label_attrs")
        );
        // Non-boolean refine is a bad request, not a crash — on both
        // policy shapes (search bound and explicit label_attrs).
        assert_eq!(responses[2].get("ok"), Some(&Json::Bool(false)));
        assert_eq!(responses[3].get("ok"), Some(&Json::Bool(false)));
    }

    #[test]
    fn csv_register_and_numeric_coercion() {
        let responses = run_session(concat!(
            "{\"op\":\"register\",\"dataset\":\"t\",\"csv\":\"a,b\\n1,x\\n1,y\\n2,x\\n\",",
            "\"label_attrs\":[\"a\",\"b\"]}\n",
            "{\"op\":\"query\",\"dataset\":\"t\",\"patterns\":[{\"a\":1,\"b\":\"x\"},{\"a\":\"2\"}]}\n",
        ));
        assert_eq!(responses[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(responses[0].get("rows").and_then(Json::as_u64), Some(3));
        let results = responses[1]
            .get("results")
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(results[0].get("estimate").and_then(Json::as_f64), Some(1.0));
        assert_eq!(results[1].get("estimate").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn append_rows_session_updates_counts_incrementally() {
        let responses = run_session(concat!(
            "{\"op\":\"register\",\"dataset\":\"t\",\"csv\":\"a,b\\n1,x\\n1,y\\n2,x\\n\",",
            "\"label_attrs\":[\"a\",\"b\"]}\n",
            "{\"op\":\"query\",\"dataset\":\"t\",\"patterns\":[{\"a\":\"1\",\"b\":\"x\"}]}\n",
            // Known values only: incremental append touching few shards.
            "{\"op\":\"append_rows\",\"dataset\":\"t\",\"rows\":[[1,\"x\"],[\"2\",\"y\"]]}\n",
            "{\"op\":\"query\",\"dataset\":\"t\",\"patterns\":[{\"a\":\"1\",\"b\":\"x\"}]}\n",
            // A null cell is a missing value, a new value rebuilds.
            "{\"op\":\"append_rows\",\"dataset\":\"t\",\"rows\":[[null,\"x\"]]}\n",
            "{\"op\":\"append_rows\",\"dataset\":\"t\",\"rows\":[[\"3\",\"x\"]]}\n",
            "{\"op\":\"query\",\"dataset\":\"t\",\"patterns\":[{\"a\":\"3\"}]}\n",
            // Failure shapes: bad rows, unknown dataset.
            "{\"op\":\"append_rows\",\"dataset\":\"t\",\"rows\":[[\"1\"]]}\n",
            "{\"op\":\"append_rows\",\"dataset\":\"t\",\"rows\":[]}\n",
            "{\"op\":\"append_rows\",\"dataset\":\"ghost\",\"rows\":[[\"1\",\"x\"]]}\n",
        ));
        assert_eq!(
            responses[1].get("results").unwrap().as_array().unwrap()[0]
                .get("estimate")
                .and_then(Json::as_f64),
            Some(1.0)
        );

        let append = &responses[2];
        assert_eq!(append.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(append.get("appended").and_then(Json::as_u64), Some(2));
        assert_eq!(append.get("rows").and_then(Json::as_u64), Some(5));
        assert_eq!(append.get("generation").and_then(Json::as_u64), Some(1));
        assert_eq!(append.get("incremental"), Some(&Json::Bool(true)));
        assert!(!append
            .get("touched_shards")
            .and_then(Json::as_array)
            .unwrap()
            .is_empty());

        // (a=1, b=x) count grew from 1 to 2 and is served post-append.
        assert_eq!(
            responses[3].get("results").unwrap().as_array().unwrap()[0]
                .get("estimate")
                .and_then(Json::as_f64),
            Some(2.0)
        );
        assert_eq!(
            responses[3].get("generation").and_then(Json::as_u64),
            Some(1)
        );

        // Missing cell stays incremental; new value "3" rebuilds.
        assert_eq!(responses[4].get("incremental"), Some(&Json::Bool(true)));
        assert_eq!(responses[5].get("incremental"), Some(&Json::Bool(false)));
        assert_eq!(
            responses[6].get("results").unwrap().as_array().unwrap()[0]
                .get("estimate")
                .and_then(Json::as_f64),
            Some(1.0)
        );

        for i in [7usize, 8, 9] {
            assert_eq!(responses[i].get("ok"), Some(&Json::Bool(false)), "line {i}");
        }
    }

    #[test]
    fn refresh_bumps_generation_and_list_reports() {
        let responses = run_session(concat!(
            "{\"op\":\"register\",\"dataset\":\"census\",\"generator\":\"figure2\",\"bound\":5}\n",
            "{\"op\":\"refresh\",\"dataset\":\"census\",\"label_attrs\":[\"gender\"]}\n",
            "{\"op\":\"list\"}\n",
        ));
        assert_eq!(
            responses[1].get("generation").and_then(Json::as_u64),
            Some(1)
        );
        let listed = responses[2]
            .get("datasets")
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(
            listed[0].get("dataset").and_then(Json::as_str),
            Some("census")
        );
    }

    #[test]
    fn errors_are_reported_per_line() {
        let responses = run_session(concat!(
            "not json\n",
            "{\"nop\":1}\n",
            "{\"op\":\"teleport\"}\n",
            "{\"op\":\"query\",\"dataset\":\"ghost\",\"patterns\":[]}\n",
            "{\"op\":\"register\",\"dataset\":\"x\"}\n",
            "{\"op\":\"register\",\"dataset\":\"x\",\"generator\":\"warp\"}\n",
        ));
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(
                r.get("ok"),
                Some(&Json::Bool(false)),
                "line {i} should fail"
            );
            assert!(r.get("error").is_some(), "line {i} carries an error");
        }
    }

    #[test]
    fn summary_counts_requests_and_errors() {
        let dispatcher = Dispatcher::with_config(EngineConfig::default());
        let input = "{\"op\":\"list\"}\nbroken\n\n{\"op\":\"list\"}\n";
        let mut out = Vec::new();
        let summary = serve(&dispatcher, input.as_bytes(), &mut out).unwrap();
        assert_eq!(
            summary,
            ServeSummary {
                requests: 3,
                errors: 1
            }
        );
    }

    #[test]
    fn health_reports_dataset_count() {
        let responses = run_session(concat!(
            "{\"op\":\"health\"}\n",
            "{\"op\":\"register\",\"dataset\":\"census\",\"generator\":\"figure2\",\"bound\":5}\n",
            "{\"op\":\"health\"}\n",
        ));
        assert_eq!(
            responses[0].get("status").and_then(Json::as_str),
            Some("ok")
        );
        assert_eq!(responses[0].get("datasets").and_then(Json::as_u64), Some(0));
        assert_eq!(responses[2].get("datasets").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn estimate_multi_combines_registered_labels() {
        // Two labels over the same figure-2 data: {gender, age group} and
        // {age group, marital status} — the setting of the core
        // `multi` unit tests, here reached through the wire protocol.
        let responses = run_session(concat!(
            "{\"op\":\"register\",\"dataset\":\"a\",\"generator\":\"figure2\",",
            "\"label_attrs\":[\"gender\",\"age group\"]}\n",
            "{\"op\":\"register\",\"dataset\":\"b\",\"generator\":\"figure2\",",
            "\"label_attrs\":[\"age group\",\"marital status\"]}\n",
            "{\"op\":\"estimate_multi\",\"id\":\"m1\",\"patterns\":[",
            "{\"gender\":\"Female\",\"age group\":\"20-39\",\"marital status\":\"married\"}]}\n",
            "{\"op\":\"estimate_multi\",\"strategy\":\"min_estimate\",\"patterns\":[",
            "{\"gender\":\"Female\",\"age group\":\"20-39\",\"marital status\":\"married\"}]}\n",
            "{\"op\":\"estimate_multi\",\"strategy\":\"geometric_mean\",\"datasets\":[\"a\",\"b\"],",
            "\"patterns\":[{\"gender\":\"Female\",\"age group\":\"20-39\",\"marital status\":\"married\"}]}\n",
        ));
        assert_eq!(responses[2].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(responses[2].get("id").and_then(Json::as_str), Some("m1"));
        assert_eq!(
            responses[2].get("strategy").and_then(Json::as_str),
            Some("most_specific")
        );
        let results = responses[2]
            .get("results")
            .and_then(Json::as_array)
            .unwrap();
        // Both labels overlap 2 attrs; tie-break on |PC| picks the exact
        // one (3.0) — mirrors the MultiLabel unit test.
        assert_eq!(results[0].get("estimate").and_then(Json::as_f64), Some(3.0));
        let sources = results[0].get("sources").and_then(Json::as_array).unwrap();
        assert_eq!(sources.len(), 2);
        assert_eq!(sources[0].get("dataset").and_then(Json::as_str), Some("a"));
        assert_eq!(sources[1].get("exact"), Some(&Json::Bool(false)));

        let min = responses[3]
            .get("results")
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(min[0].get("estimate").and_then(Json::as_f64), Some(2.0));
        let geo = responses[4]
            .get("results")
            .and_then(Json::as_array)
            .unwrap();
        let g = geo[0].get("estimate").and_then(Json::as_f64).unwrap();
        assert!((g - (2.0f64 * 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn estimate_multi_failure_modes() {
        let responses = run_session(concat!(
            "{\"op\":\"estimate_multi\",\"patterns\":[{\"x\":\"1\"}]}\n",
            "{\"op\":\"register\",\"dataset\":\"a\",\"generator\":\"figure2\",\"bound\":5}\n",
            "{\"op\":\"estimate_multi\",\"strategy\":\"median\",\"patterns\":[{\"x\":\"1\"}]}\n",
            "{\"op\":\"estimate_multi\",\"datasets\":[\"ghost\"],\"patterns\":[{\"x\":\"1\"}]}\n",
            "{\"op\":\"estimate_multi\",\"datasets\":[\"a\",\"a\"],\"patterns\":[{\"x\":\"1\"}]}\n",
            "{\"op\":\"estimate_multi\",\"patterns\":[{\"no such attr\":\"1\"}]}\n",
        ));
        // No datasets registered / bad strategy / unknown dataset /
        // duplicate dataset: whole request fails.
        for i in [0usize, 2, 3, 4] {
            assert_eq!(responses[i].get("ok"), Some(&Json::Bool(false)), "line {i}");
        }
        // An unresolvable pattern fails individually.
        assert_eq!(responses[5].get("ok"), Some(&Json::Bool(true)));
        let results = responses[5]
            .get("results")
            .and_then(Json::as_array)
            .unwrap();
        assert!(results[0].get("error").is_some());
    }

    #[test]
    fn server_stats_reports_request_counters_and_cache() {
        let dispatcher = Dispatcher::with_config(EngineConfig::default());
        let lines = concat!(
            "{\"op\":\"register\",\"dataset\":\"census\",\"generator\":\"figure2\",\"bound\":5}\n",
            "{\"op\":\"query\",\"dataset\":\"census\",\"patterns\":[{\"gender\":\"Female\"}]}\n",
            "{\"op\":\"query\",\"dataset\":\"census\",\"patterns\":[{\"gender\":\"Female\"}]}\n",
            "{\"op\":\"server_stats\"}\n",
        );
        let mut out = Vec::new();
        serve(&dispatcher, lines.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let stats = Json::parse(text.lines().last().unwrap()).unwrap();
        assert_eq!(stats.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(stats.get("telemetry_enabled"), Some(&Json::Bool(true)));
        let counters = stats.get("counters").unwrap();
        assert_eq!(
            counters
                .get("pclabel_requests_total{op=\"query\"}")
                .and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(
            counters
                .get("pclabel_requests_total{op=\"register\"}")
                .and_then(Json::as_u64),
            Some(1)
        );
        let caches = stats.get("cache").and_then(Json::as_array).unwrap();
        assert_eq!(caches.len(), 1);
        assert_eq!(
            caches[0].get("dataset").and_then(Json::as_str),
            Some("census")
        );
        // The repeated query is a cache hit; the first was a miss.
        assert_eq!(caches[0].get("hits").and_then(Json::as_u64), Some(1));
        assert_eq!(caches[0].get("misses").and_then(Json::as_u64), Some(1));

        let histograms = stats.get("histograms").unwrap();
        let latency = histograms
            .get("pclabel_request_seconds{op=\"register\"}")
            .expect("register latency histogram");
        assert_eq!(latency.get("count").and_then(Json::as_u64), Some(1));

        // The Prometheus rendering covers the same series, well formed.
        let metrics = dispatcher.metrics_text();
        assert!(metrics.contains("# TYPE pclabel_requests_total counter"));
        assert!(metrics.contains("pclabel_requests_total{op=\"query\"} 2"));
        assert!(metrics.contains("pclabel_cache_hits_total{dataset=\"census\"} 1"));
        assert!(metrics.contains("# TYPE pclabel_request_seconds histogram"));
    }

    #[test]
    fn server_debug_retains_annotated_traces_and_memory() {
        let dispatcher = Dispatcher::with_config(EngineConfig::default());
        let lines = concat!(
            "{\"op\":\"register\",\"dataset\":\"census\",\"generator\":\"figure2\",\"bound\":5}\n",
            "{\"op\":\"query\",\"dataset\":\"census\",\"patterns\":[{\"gender\":\"Female\"},",
            "{\"age group\":\"20-39\"}]}\n",
        );
        let mut out = Vec::new();
        serve(&dispatcher, lines.as_bytes(), &mut out).unwrap();

        let debug = dispatcher.dispatch_line("{\"op\":\"server_debug\"}");
        assert_eq!(debug.get("ok"), Some(&Json::Bool(true)));
        assert!(debug.get("uptime_seconds").and_then(Json::as_f64).unwrap() >= 0.0);
        assert_eq!(
            debug.get("version").and_then(Json::as_str),
            Some(BUILD_VERSION)
        );

        // The traces section holds the register and query, oldest first,
        // with the request's dataset/batch-size annotations attached.
        let traces = debug
            .get("traces")
            .and_then(|t| t.get("traces"))
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].get("op").and_then(Json::as_str), Some("register"));
        let query = &traces[1];
        assert_eq!(query.get("op").and_then(Json::as_str), Some("query"));
        assert_eq!(query.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(query.get("dataset").and_then(Json::as_str), Some("census"));
        assert_eq!(query.get("items").and_then(Json::as_u64), Some(2));
        assert_eq!(query.get("rows").and_then(Json::as_u64), Some(18));
        let id = query.get("request_id").and_then(Json::as_u64).unwrap();

        // A single trace is retrievable by request id (the id slow-query
        // warn lines print), and op/slowest selectors narrow the rings.
        let by_id = dispatcher.debug_traces_json(None, false, Some(id));
        let found = by_id.get("traces").and_then(Json::as_array).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].get("request_id").and_then(Json::as_u64), Some(id));

        let by_op = dispatcher.debug_traces_json(Some("query"), true, None);
        assert_eq!(by_op.get("ring").and_then(Json::as_str), Some("slowest"));
        let slow = by_op.get("traces").and_then(Json::as_array).unwrap();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].get("op").and_then(Json::as_str), Some("query"));
        assert_eq!(
            dispatcher
                .debug_traces_json(Some("teleport"), false, None)
                .get("ok"),
            Some(&Json::Bool(false))
        );

        // The memory section agrees with the stats op's breakdown.
        let memory = debug.get("memory").unwrap();
        assert!(memory.get("total_bytes").and_then(Json::as_u64).unwrap() > 0);
        let per_dataset = memory.get("datasets").and_then(Json::as_array).unwrap();
        assert_eq!(per_dataset.len(), 1);
        let components = per_dataset[0].get("components").unwrap();
        assert!(components.get("dataset").and_then(Json::as_u64).unwrap() > 0);
        assert!(components.get("label_pc").and_then(Json::as_u64).unwrap() > 0);

        let stats = dispatcher.dispatch_line("{\"op\":\"stats\",\"dataset\":\"census\"}");
        let stats_memory = stats.get("memory").unwrap();
        assert_eq!(
            stats_memory.get("total_bytes"),
            per_dataset[0].get("total_bytes")
        );
        assert_eq!(stats_memory.get("label_pc"), components.get("label_pc"));
    }

    #[test]
    fn health_and_metrics_carry_build_info_and_memory_gauges() {
        let dispatcher = Dispatcher::with_config(EngineConfig::default());
        let health = dispatcher.dispatch_line("{\"op\":\"health\"}");
        assert!(health.get("uptime_seconds").and_then(Json::as_f64).unwrap() >= 0.0);
        assert_eq!(
            health.get("version").and_then(Json::as_str),
            Some(BUILD_VERSION)
        );

        let stats = dispatcher.dispatch_line("{\"op\":\"server_stats\"}");
        assert_eq!(
            stats.get("version").and_then(Json::as_str),
            Some(BUILD_VERSION)
        );
        assert!(stats.get("uptime_seconds").and_then(Json::as_f64).is_some());

        dispatcher.dispatch_line(
            "{\"op\":\"register\",\"dataset\":\"census\",\"generator\":\"figure2\",\"bound\":5}",
        );
        let metrics = dispatcher.metrics_text();
        assert!(metrics.contains(&format!(
            "pclabel_build_info{{version=\"{BUILD_VERSION}\"}} 1"
        )));
        assert!(metrics.contains("# TYPE pclabel_dataset_bytes gauge"));
        assert!(metrics.contains("pclabel_dataset_bytes{dataset=\"census\",component=\"dataset\"}"));
        assert!(
            metrics.contains("pclabel_dataset_bytes{dataset=\"census\",component=\"label_pc\"}")
        );
    }

    #[test]
    fn disabled_telemetry_dispatches_identically() {
        use pclabel_telemetry::Telemetry;
        let dispatcher = Dispatcher::with_telemetry(EngineConfig::default(), Telemetry::disabled());
        let req = "{\"op\":\"register\",\"dataset\":\"a\",\"generator\":\"figure2\",\"bound\":5}";
        let resp = dispatcher.dispatch_line(req);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        let stats = dispatcher.dispatch_line("{\"op\":\"server_stats\"}");
        assert_eq!(stats.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(stats.get("telemetry_enabled"), Some(&Json::Bool(false)));
        let counters = stats.get("counters").unwrap();
        assert_eq!(
            counters
                .get("pclabel_requests_total{op=\"register\"}")
                .and_then(Json::as_u64),
            Some(0)
        );
    }
}
