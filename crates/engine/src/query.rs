//! The batched query API.
//!
//! A [`QueryRequest`] asks one stored dataset for the counts of many
//! patterns at once. Per pattern the planner picks the cheapest sound
//! answer:
//!
//! 1. **cache** — a previous answer for the identical pattern (per-entry
//!    sharded cache, invalidated on label refresh);
//! 2. **exact** — when `Attr(p) ⊆ S`, the stored `PC` group map answers
//!    exactly (paper §III-A: estimation is exact within the label's
//!    subset), via `Label::count_of_projection`;
//! 3. **estimate** — otherwise the paper's estimation function
//!    `Label::estimate` (Def. 2.11).
//!
//! Large batches are chunked across `std::thread::scope` workers; the
//! whole batch answers against one label snapshot (`Arc<Label>`), so a
//! concurrent refresh never mixes generations within a response.

use std::sync::Arc;

use pclabel_core::label::Label;
use pclabel_core::pattern::Pattern;
use pclabel_data::dataset::Dataset;
use pclabel_telemetry::{Phase, Trace};

use crate::store::{EngineError, LabelStore, StoreEntry};

/// One pattern, as resolvable `(attribute name, value label)` terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternSpec {
    /// Attribute-name → value-label assignments.
    pub terms: Vec<(String, String)>,
}

impl PatternSpec {
    /// Builds a spec from string pairs.
    pub fn new<const N: usize>(terms: [(&str, &str); N]) -> Self {
        PatternSpec {
            terms: terms
                .iter()
                .map(|&(a, v)| (a.to_string(), v.to_string()))
                .collect(),
        }
    }
}

/// A batch of pattern-count queries against one stored dataset.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Optional client correlation id, echoed in the response.
    pub id: Option<String>,
    /// Name the dataset was registered under.
    pub dataset: String,
    /// Patterns to estimate (one result each, same order).
    pub patterns: Vec<PatternSpec>,
}

/// Per-pattern answer.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternEstimate {
    /// The estimated (or exact) count; 0.0 when `error` is set.
    pub estimate: f64,
    /// Whether the answer is exact (`Attr(p) ⊆ S`).
    pub exact: bool,
    /// Whether the answer came from the cache.
    pub cached: bool,
    /// Per-pattern failure (unknown attribute/value), leaving the rest of
    /// the batch unaffected.
    pub error: Option<String>,
}

/// Batch-level counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Answers taken from the stored `PC` map (exact path).
    pub exact: u64,
    /// Answers computed by the estimation function.
    pub estimated: u64,
    /// Answers served from the pattern cache.
    pub cache_hits: u64,
    /// Patterns that missed the cache.
    pub cache_misses: u64,
    /// Patterns that failed to resolve.
    pub failed: u64,
}

/// Response to a [`QueryRequest`].
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// Echo of [`QueryRequest::id`].
    pub id: Option<String>,
    /// Echo of the dataset name.
    pub dataset: String,
    /// `|D|` of the answering dataset.
    pub n_rows: u64,
    /// Attribute names of the answering label's subset `S`.
    pub label_attrs: Vec<String>,
    /// Label generation the batch was answered with.
    pub generation: u64,
    /// One answer per requested pattern, in request order.
    pub results: Vec<PatternEstimate>,
    /// Batch counters.
    pub stats: QueryStats,
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads for large batches; `0` = available parallelism.
    pub query_threads: usize,
    /// Batches smaller than this stay on the calling thread.
    pub parallel_batch_threshold: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            query_threads: 0,
            parallel_batch_threshold: 256,
        }
    }
}

impl EngineConfig {
    fn resolve_threads(&self, batch: usize) -> usize {
        if batch < self.parallel_batch_threshold.max(2) {
            return 1;
        }
        let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
        let configured = if self.query_threads == 0 {
            hw
        } else {
            self.query_threads
        };
        configured.min(batch).max(1)
    }
}

/// The serving engine: a [`LabelStore`] plus batch execution.
#[derive(Debug, Default)]
pub struct Engine {
    store: Arc<LabelStore>,
    config: EngineConfig,
    durability: std::sync::OnceLock<Arc<crate::durability::Durability>>,
}

impl Engine {
    /// Creates an engine with the given tuning.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            store: Arc::new(LabelStore::new()),
            config,
            durability: std::sync::OnceLock::new(),
        }
    }

    /// The underlying dataset/label registry.
    pub fn store(&self) -> &LabelStore {
        &self.store
    }

    /// A shareable handle to the registry (what
    /// [`crate::durability::Durability::open`] takes).
    pub fn store_arc(&self) -> Arc<LabelStore> {
        Arc::clone(&self.store)
    }

    /// Attaches an opened durability plane so transports can expose its
    /// stats. First attach wins; later calls are ignored.
    pub fn attach_durability(&self, durability: Arc<crate::durability::Durability>) {
        let _ = self.durability.set(durability);
    }

    /// The attached durability plane, if the process runs with one.
    pub fn durability(&self) -> Option<&Arc<crate::durability::Durability>> {
        self.durability.get()
    }

    /// Executes a batch. Fails only when the dataset itself is unknown;
    /// individual bad patterns are reported per-result.
    ///
    /// The whole batch — estimation *and* cache writes — runs inside
    /// [`StoreEntry::with_snapshot`], so the response's results,
    /// generation and `label_attrs` all describe the same dataset/label
    /// version, and a concurrent refresh or append can never leave
    /// stale estimates behind in the cache.
    pub fn execute(&self, request: &QueryRequest) -> Result<QueryResponse, EngineError> {
        self.execute_traced(request, None)
    }

    /// [`Engine::execute`] with an optional request trace: records the
    /// wait for the entry's snapshot lock and the accumulated
    /// pattern-cache probe time.
    pub fn execute_traced(
        &self,
        request: &QueryRequest,
        trace: Option<&Trace>,
    ) -> Result<QueryResponse, EngineError> {
        let entry = self.store.get(&request.dataset)?;
        let threads = self.config.resolve_threads(request.patterns.len());

        let lock_start = std::time::Instant::now();
        let response = entry.with_snapshot(|dataset, label, generation| {
            if let Some(trace) = trace {
                trace.add_phase(Phase::StoreWait, lock_start.elapsed());
            }
            let results: Vec<PatternEstimate> = if threads <= 1 {
                request
                    .patterns
                    .iter()
                    .map(|spec| answer_one(&entry, dataset, label, spec, trace))
                    .collect()
            } else {
                let chunk = request.patterns.len().div_ceil(threads);
                let mut out: Vec<PatternEstimate> = Vec::with_capacity(request.patterns.len());
                let parts: Vec<Vec<PatternEstimate>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = request
                        .patterns
                        .chunks(chunk)
                        .map(|specs| {
                            let entry = &entry;
                            scope.spawn(move || {
                                specs
                                    .iter()
                                    .map(|s| answer_one(entry, dataset, label, s, trace))
                                    .collect()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("query worker panicked"))
                        .collect()
                });
                for part in parts {
                    out.extend(part);
                }
                out
            };

            let mut stats = QueryStats::default();
            for r in &results {
                if r.error.is_some() {
                    stats.failed += 1;
                } else if r.cached {
                    stats.cache_hits += 1;
                } else {
                    stats.cache_misses += 1;
                    if r.exact {
                        stats.exact += 1;
                    } else {
                        stats.estimated += 1;
                    }
                }
            }

            QueryResponse {
                id: request.id.clone(),
                dataset: request.dataset.clone(),
                n_rows: label.n_rows(),
                label_attrs: StoreEntry::attr_names(label),
                generation,
                results,
                stats,
            }
        });
        Ok(response)
    }
}

/// The planner's answer rule for one resolved pattern against a label
/// snapshot: **exact** `PC` projection when `Attr(p) ⊆ S` (paper
/// §III-A), the paper's estimation function otherwise. Returns
/// `(estimate, exact)`. Shared by single-dataset batches and the
/// `estimate_multi` dispatch path so the two can never diverge.
pub(crate) fn label_answer(label: &Label, pattern: &Pattern) -> (f64, bool) {
    let exact = pattern.attrs().is_subset_of(label.attrs());
    let estimate = if exact {
        label.count_of_projection(pattern) as f64
    } else {
        label.estimate(pattern)
    };
    (estimate, exact)
}

/// Answers one pattern against a dataset/label snapshot (cache → exact →
/// estimate). Must run inside [`StoreEntry::with_snapshot`] — the cache
/// insert below is only sound while the entry's read lock pins the label
/// the estimate came from.
///
/// Answers whose value is read from a single `PC` group (`Attr(p) = S`)
/// are cached pinned to that group's count shard, so they survive
/// appends that do not touch the shard; every other answer depends on
/// marginals, `VC` fractions or `|D|` and is cached unpinned (dropped by
/// any append).
fn answer_one(
    entry: &StoreEntry,
    dataset: &Dataset,
    label: &Arc<Label>,
    spec: &PatternSpec,
    trace: Option<&Trace>,
) -> PatternEstimate {
    let terms: Vec<(&str, &str)> = spec
        .terms
        .iter()
        .map(|(a, v)| (a.as_str(), v.as_str()))
        .collect();
    let pattern = match Pattern::parse(dataset, &terms) {
        Ok(p) => p,
        Err(e) => {
            return PatternEstimate {
                estimate: 0.0,
                exact: false,
                cached: false,
                error: Some(e.to_string()),
            }
        }
    };
    let probe_start = trace.map(|_| std::time::Instant::now());
    let cached = entry.cache().get(&pattern);
    if let (Some(trace), Some(start)) = (trace, probe_start) {
        trace.add_phase(Phase::CacheLookup, start.elapsed());
    }
    if let Some(estimate) = cached {
        let exact = pattern.attrs().is_subset_of(label.attrs());
        return PatternEstimate {
            estimate,
            exact,
            cached: true,
            error: None,
        };
    }
    let (estimate, exact) = label_answer(label, &pattern);
    let count_shard = label.count_shard_of(&pattern).map(|s| s as u32);
    entry.cache().insert_tagged(pattern, estimate, count_shard);
    PatternEstimate {
        estimate,
        exact,
        cached: false,
        error: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::LabelPolicy;
    use pclabel_data::generate::figure2_sample;

    fn engine_with_census() -> Engine {
        let engine = Engine::new(EngineConfig::default());
        engine
            .store()
            .register("census", figure2_sample(), LabelPolicy::SearchBound(5))
            .unwrap();
        engine
    }

    #[test]
    fn example_2_12_served_through_engine() {
        let engine = engine_with_census();
        let request = QueryRequest {
            id: Some("q1".into()),
            dataset: "census".into(),
            patterns: vec![
                // Outside S = {age group, marital status}: estimated, 3.0.
                PatternSpec::new([
                    ("gender", "Female"),
                    ("age group", "20-39"),
                    ("marital status", "married"),
                ]),
                // Within S: exact, 6.
                PatternSpec::new([("age group", "20-39"), ("marital status", "married")]),
                // Subset of S: exact marginal, 12.
                PatternSpec::new([("age group", "20-39")]),
            ],
        };
        let response = engine.execute(&request).unwrap();
        assert_eq!(response.id.as_deref(), Some("q1"));
        assert_eq!(response.n_rows, 18);
        assert_eq!(response.label_attrs, vec!["age group", "marital status"]);
        assert_eq!(response.results[0].estimate, 3.0);
        assert!(!response.results[0].exact);
        assert_eq!(response.results[1].estimate, 6.0);
        assert!(response.results[1].exact);
        assert_eq!(response.results[2].estimate, 12.0);
        assert!(response.results[2].exact);
        assert_eq!(response.stats.exact, 2);
        assert_eq!(response.stats.estimated, 1);
        assert_eq!(response.stats.failed, 0);
    }

    #[test]
    fn repeat_batch_hits_cache() {
        let engine = engine_with_census();
        let request = QueryRequest {
            id: None,
            dataset: "census".into(),
            patterns: vec![PatternSpec::new([("gender", "Female")])],
        };
        let first = engine.execute(&request).unwrap();
        assert_eq!(first.stats.cache_misses, 1);
        let second = engine.execute(&request).unwrap();
        assert_eq!(second.stats.cache_hits, 1);
        assert_eq!(first.results[0].estimate, second.results[0].estimate);
        assert!(second.results[0].cached);
    }

    #[test]
    fn bad_patterns_fail_individually() {
        let engine = engine_with_census();
        let request = QueryRequest {
            id: None,
            dataset: "census".into(),
            patterns: vec![
                PatternSpec::new([("no such attr", "x")]),
                PatternSpec::new([("gender", "no such value")]),
                PatternSpec::new([("gender", "Female")]),
            ],
        };
        let response = engine.execute(&request).unwrap();
        assert!(response.results[0].error.is_some());
        assert!(response.results[1].error.is_some());
        assert!(response.results[2].error.is_none());
        assert_eq!(response.results[2].estimate, 9.0);
        assert_eq!(response.stats.failed, 2);
    }

    #[test]
    fn unknown_dataset_fails_whole_batch() {
        let engine = Engine::new(EngineConfig::default());
        let request = QueryRequest {
            id: None,
            dataset: "nope".into(),
            patterns: vec![],
        };
        assert!(matches!(
            engine.execute(&request),
            Err(EngineError::UnknownDataset(_))
        ));
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let sequential = engine_with_census();
        let parallel = Engine::new(EngineConfig {
            query_threads: 4,
            parallel_batch_threshold: 2,
        });
        parallel
            .store()
            .register("census", figure2_sample(), LabelPolicy::SearchBound(5))
            .unwrap();

        let d = figure2_sample();
        let mut patterns = Vec::new();
        for r in 0..d.n_rows() {
            let spec = PatternSpec {
                terms: (0..d.n_attrs())
                    .map(|a| {
                        let name = d.schema().attr(a).unwrap().name().to_string();
                        let value = d.label_of(a, d.value_raw(r, a)).to_string();
                        (name, value)
                    })
                    .collect(),
            };
            patterns.push(spec);
        }
        let request = QueryRequest {
            id: None,
            dataset: "census".into(),
            patterns,
        };
        let a = sequential.execute(&request).unwrap();
        let b = parallel.execute(&request).unwrap();
        let ea: Vec<f64> = a.results.iter().map(|r| r.estimate).collect();
        let eb: Vec<f64> = b.results.iter().map(|r| r.estimate).collect();
        assert_eq!(ea, eb);
    }
}
