//! Auto-sized parallel counting.
//!
//! [`GroupCounts::build_parallel`](pclabel_core::counting::GroupCounts::build_parallel)
//! is a deliberately dumb primitive: it chunks rows across exactly the
//! worker count it is given. This module adds the serving-side policy —
//! pick the worker count from the dataset's row count and the machine's
//! available parallelism, so small tables never pay thread-spawn overhead
//! and large tables scale to the hardware.

use pclabel_core::attrset::AttrSet;
use pclabel_core::counting::GroupCounts;
use pclabel_data::dataset::Dataset;

/// Below this many rows per worker, chunking costs more than it saves
/// (shared with the core search evaluator's auto-capping).
pub const MIN_ROWS_PER_THREAD: usize = pclabel_core::counting::MIN_PARALLEL_ROWS_PER_THREAD;

/// How counting work is spread across threads and key-range shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountingOptions {
    /// Worker threads; `0` means auto (from rows and hardware).
    pub threads: usize,
    /// Key-range shards; `0` means auto
    /// ([`pclabel_core::counting::auto_shards`] of the resolved thread
    /// count). Any value yields identical counts.
    pub shards: usize,
}

impl CountingOptions {
    /// Auto-sized (the default).
    pub const AUTO: CountingOptions = CountingOptions {
        threads: 0,
        shards: 0,
    };

    /// Exactly `threads` workers (shards stay auto).
    pub fn with_threads(threads: usize) -> Self {
        CountingOptions { threads, shards: 0 }
    }

    /// Pins the shard count (builder-style).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Resolves to a concrete worker count for `n_rows` rows.
    pub fn resolve(self, n_rows: usize) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            auto_threads(n_rows)
        }
    }

    /// Resolves to a concrete shard count for `n_rows` rows.
    pub fn resolve_shards(self, n_rows: usize) -> usize {
        if self.shards > 0 {
            self.shards
        } else {
            pclabel_core::counting::auto_shards(self.resolve(n_rows))
        }
    }
}

impl Default for CountingOptions {
    fn default() -> Self {
        Self::AUTO
    }
}

/// Worker count for an `n_rows`-row scan: one worker per
/// [`MIN_ROWS_PER_THREAD`] rows, capped at the machine's available
/// parallelism, never less than 1.
pub fn auto_threads(n_rows: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    hw.min(n_rows / MIN_ROWS_PER_THREAD).max(1)
}

/// Groups `dataset` by `attrs` with auto-sized (or explicit) parallelism.
/// Results are identical to `GroupCounts::build`.
pub fn group_counts(
    dataset: &Dataset,
    weights: Option<&[u64]>,
    attrs: AttrSet,
    opts: CountingOptions,
) -> GroupCounts {
    let n = dataset.n_rows();
    GroupCounts::build_parallel_sharded(
        dataset,
        weights,
        attrs,
        opts.resolve(n),
        opts.resolve_shards(n),
    )
}

/// `|P_S|` via parallel counting.
pub fn label_size(dataset: &Dataset, attrs: AttrSet, opts: CountingOptions) -> u64 {
    group_counts(dataset, None, attrs, opts).pattern_count_size()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pclabel_data::generate::figure2_sample;

    #[test]
    fn auto_threads_scales_with_rows() {
        assert_eq!(auto_threads(0), 1);
        assert_eq!(auto_threads(100), 1);
        assert_eq!(auto_threads(MIN_ROWS_PER_THREAD - 1), 1);
        let big = auto_threads(MIN_ROWS_PER_THREAD * 1024);
        assert!(big >= 1);
        assert!(big <= std::thread::available_parallelism().map_or(1, |p| p.get()));
    }

    #[test]
    fn options_resolve() {
        assert_eq!(CountingOptions::with_threads(3).resolve(10), 3);
        assert_eq!(CountingOptions::AUTO.resolve(10), 1);
        assert_eq!(CountingOptions::default(), CountingOptions::AUTO);
    }

    #[test]
    fn group_counts_matches_serial() {
        let d = figure2_sample();
        let attrs = AttrSet::from_indices([1, 3]);
        let serial = GroupCounts::build(&d, None, attrs);
        let auto = group_counts(&d, None, attrs, CountingOptions::AUTO);
        let forced = group_counts(&d, None, attrs, CountingOptions::with_threads(4));
        assert_eq!(serial.pattern_count_size(), auto.pattern_count_size());
        assert_eq!(serial.pattern_count_size(), forced.pattern_count_size());
        assert_eq!(label_size(&d, attrs, CountingOptions::AUTO), 3);
    }
}
