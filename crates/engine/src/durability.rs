//! The durability plane: recovery, the live WAL sink, and background
//! snapshotting for a [`LabelStore`].
//!
//! The on-disk formats (segment/record/snapshot layouts, CRCs, the
//! torn-tail rule) live in the `pclabel-wal` crate and are specified in
//! `docs/ONDISK_FORMAT.md`; this module is the engine-side policy layer
//! that ties them to the store:
//!
//! * **Recovery** ([`Durability::open`]) — load the newest snapshot
//!   that passes full validation (format CRCs *and* a semantic check:
//!   the label rebuilt from the snapshot's dataset must reproduce the
//!   stored `PC`/`VC` tables exactly), fall back to its predecessor if
//!   not, then replay the WAL segments on top. Replay is idempotent via
//!   each entry's `applied_lsn`, so a snapshot taken mid-stream and the
//!   records around it compose without a store-wide barrier.
//! * **Logging** (`WalSink`) — every store mutation appends its record
//!   *before* publishing, under the chosen [`FsyncPolicy`].
//! * **Snapshotting** ([`Durability::snapshot_now`] and the background
//!   thread) — capture the store, write a snapshot (tmp + rename +
//!   directory fsync), rotate the WAL, then retire old snapshots and
//!   prune fully-covered segments.
//!
//! Recovery never appends to an existing segment: it opens a fresh one
//! at the recovered LSN and quarantines (renames to `*.torn`) anything
//! it could not trust, so a half-written tail is never re-read.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pclabel_core::attrset::AttrSet;
use pclabel_core::label::Label;
use pclabel_data::dataset::{Dataset, MISSING};
use pclabel_telemetry::{Counter, Gauge, Histogram, Registry};
use pclabel_wal::dir::DataDir;
use pclabel_wal::record::WalOp;
use pclabel_wal::snapshot::{write_snapshot, SnapshotData, SnapshotEntry};
use pclabel_wal::wal::{
    read_segment, FsyncPolicy, TailState, WalWriter, BATCH_BYTES, BATCH_INTERVAL_MS, WAL_HEADER_LEN,
};

use crate::health::Health;
use crate::parallel::auto_threads;
use crate::store::{sel_of, EngineError, LabelStore, StoreEntry};

impl From<pclabel_wal::FormatError> for EngineError {
    fn from(e: pclabel_wal::FormatError) -> Self {
        EngineError::Durability(e.to_string())
    }
}

/// Tuning for the durability plane.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityOptions {
    /// When WAL appends reach disk (`--fsync always|batch|off`).
    pub fsync: FsyncPolicy,
    /// Unsnapshotted-WAL-byte threshold that triggers a background
    /// snapshot.
    pub snapshot_wal_bytes: u64,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            fsync: FsyncPolicy::Batch,
            snapshot_wal_bytes: 4 * 1024 * 1024,
        }
    }
}

/// What [`Durability::open`] found and did, for boot logging and the
/// crash-recovery gate.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// `last_lsn` of the snapshot recovery loaded, if any.
    pub snapshot_lsn: Option<u64>,
    /// Snapshots that failed validation, newest first, with reasons.
    pub rejected_snapshots: Vec<(PathBuf, String)>,
    /// WAL records fed to replay (applied or idempotently skipped).
    pub replayed_records: u64,
    /// Highest trusted LSN after replay — the new segment's base.
    pub recovered_lsn: u64,
    /// Datasets live in the store after recovery.
    pub datasets: usize,
    /// Why replay stopped early (torn tail, segment gap, unreadable
    /// segment), if it did. The untrusted files are quarantined.
    pub stopped: Option<String>,
    /// Segment files renamed to `*.torn` because replay could not
    /// trust them.
    pub quarantined: Vec<PathBuf>,
}

/// A point-in-time view of the durability plane for `stats` /
/// `server_stats`.
#[derive(Debug, Clone)]
pub struct DurabilityStats {
    /// The data directory.
    pub data_dir: PathBuf,
    /// The configured fsync policy.
    pub fsync: FsyncPolicy,
    /// LSN of the last appended WAL record.
    pub last_lsn: u64,
    /// `last_lsn` of the newest on-disk snapshot (0 before the first).
    pub snapshot_lsn: u64,
    /// Seconds since the last snapshot was written (since boot before
    /// the first).
    pub snapshot_age_secs: f64,
    /// Total bytes across live WAL segments.
    pub wal_bytes: u64,
    /// Live WAL segment count.
    pub segments: usize,
    /// Live snapshot count.
    pub snapshots: usize,
}

/// The live write-ahead-log sink the store appends through.
///
/// One mutex serializes appends; it is the *leaf* of the lock hierarchy
/// (store registry lock → entry lock → this), which is what lets
/// mutators log while holding their publish locks without deadlocking
/// against the snapshotter (which captures entry state without ever
/// taking this mutex while holding store locks).
pub(crate) struct WalSink {
    writer: Mutex<WalWriter>,
    policy: FsyncPolicy,
    health: Arc<Health>,
    last_lsn: AtomicU64,
    /// Bytes appended since the last snapshot, driving the background
    /// snapshot trigger.
    unsnapshotted_bytes: AtomicU64,
    records_total: Arc<Counter>,
    last_lsn_gauge: Arc<Gauge>,
    unsnapshotted_gauge: Arc<Gauge>,
    fsync_seconds: Arc<Histogram>,
}

impl std::fmt::Debug for WalSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalSink")
            .field("policy", &self.policy)
            .field("last_lsn", &self.last_lsn.load(Ordering::Relaxed))
            .finish()
    }
}

impl WalSink {
    fn new(
        writer: WalWriter,
        policy: FsyncPolicy,
        registry: &Registry,
        health: Arc<Health>,
    ) -> WalSink {
        let last_lsn = writer.next_lsn().saturating_sub(1);
        WalSink {
            writer: Mutex::new(writer),
            policy,
            health,
            last_lsn: AtomicU64::new(last_lsn),
            unsnapshotted_bytes: AtomicU64::new(0),
            records_total: registry.counter(
                "pclabel_wal_records_total",
                "WAL records appended since boot",
                &[],
            ),
            last_lsn_gauge: registry.gauge(
                "pclabel_wal_last_lsn",
                "LSN of the last appended WAL record",
                &[],
            ),
            unsnapshotted_gauge: registry.gauge(
                "pclabel_wal_unsnapshotted_bytes",
                "WAL bytes appended since the last snapshot",
                &[],
            ),
            fsync_seconds: registry.histogram("pclabel_fsync_seconds", "WAL fsync latency", &[]),
        }
    }

    /// Appends one op, syncing per the fsync policy, and returns its
    /// LSN. An I/O failure is returned to the mutator, which must not
    /// publish its change — and flips the store into read-only degraded
    /// mode until the probe thread heals the data directory.
    pub(crate) fn append(&self, op: &WalOp) -> Result<u64, EngineError> {
        let mut writer = self.writer.lock().expect("wal mutex");
        // Checked *under the writer lock*: a concurrent mutator that
        // just failed (and rolled back) marks degraded before releasing
        // the lock, so no append can land between a rollback and the
        // heal's truncation.
        if let Some(reason) = self.health.degraded_reason() {
            return Err(EngineError::Degraded(reason));
        }
        let before = writer.bytes_written();
        let lsn = match writer.append(op) {
            Ok(lsn) => lsn,
            Err(e) => {
                // A failed (possibly partial) append leaves the
                // writer's counters untouched, so the torn bytes sit
                // beyond the trusted prefix and sanitize removes them.
                let reason = format!("WAL append: {e}");
                self.health.note_append_failure(&reason);
                return Err(EngineError::Degraded(reason));
            }
        };
        let appended = writer.bytes_written() - before;
        let synced = match self.policy {
            FsyncPolicy::Always => self.timed_sync(&mut writer),
            FsyncPolicy::Batch => {
                if writer.unsynced_bytes() >= BATCH_BYTES {
                    self.timed_sync(&mut writer)
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::Off => Ok(()),
        };
        if let Err(e) = synced {
            // The record reached the file but not the platter, and the
            // mutator will not publish or acknowledge it. Un-count it
            // so sanitize truncates it during heal — otherwise an
            // unacknowledged op would replay on the next boot (and a
            // client retrying the degraded error would apply it twice).
            writer.rollback_last(appended);
            let reason = e.to_string();
            self.health.note_append_failure(&reason);
            return Err(EngineError::Degraded(reason));
        }
        drop(writer);
        self.last_lsn.store(lsn, Ordering::Release);
        self.records_total.inc();
        self.last_lsn_gauge.set(lsn);
        let total = self
            .unsnapshotted_bytes
            .fetch_add(appended, Ordering::Relaxed)
            + appended;
        self.unsnapshotted_gauge.set(total);
        Ok(lsn)
    }

    fn timed_sync(&self, writer: &mut WalWriter) -> Result<(), EngineError> {
        let t0 = Instant::now();
        writer
            .sync()
            .map_err(|e| EngineError::Durability(format!("WAL fsync: {e}")))?;
        self.fsync_seconds.observe(t0.elapsed().as_secs_f64());
        Ok(())
    }

    /// LSN of the last appended record.
    pub(crate) fn last_lsn(&self) -> u64 {
        self.last_lsn.load(Ordering::Acquire)
    }

    /// Time-half of [`FsyncPolicy::Batch`]: syncs when unsynced bytes
    /// have been sitting longer than [`BATCH_INTERVAL_MS`]. Driven by
    /// the background flusher thread.
    fn flush_if_due(&self) -> Result<(), EngineError> {
        let mut writer = self.writer.lock().expect("wal mutex");
        if writer.unsynced_bytes() > 0 && writer.millis_since_sync() >= BATCH_INTERVAL_MS {
            self.timed_sync(&mut writer)?;
        }
        Ok(())
    }

    /// Truncates the live segment back to its trusted prefix and fsyncs
    /// it — the first step of a degraded-mode heal (removes torn bytes
    /// from partial appends and rolled-back ghost records).
    fn sanitize(&self) -> Result<(), EngineError> {
        let mut writer = self.writer.lock().expect("wal mutex");
        writer
            .sanitize()
            .map_err(|e| EngineError::Durability(format!("WAL sanitize: {e}")))
    }

    /// Syncs the current segment and opens a fresh one whose base is
    /// the last written LSN. Skipped (returning `false`) when the
    /// current segment holds no records — rotation would recreate the
    /// same file name.
    fn rotate(&self, dir: &DataDir) -> Result<bool, EngineError> {
        let mut writer = self.writer.lock().expect("wal mutex");
        if writer.bytes_written() == WAL_HEADER_LEN as u64 {
            return Ok(false);
        }
        self.timed_sync(&mut writer)?;
        let base = writer.next_lsn() - 1;
        let fresh = WalWriter::create(dir.path(), base)
            .map_err(|e| EngineError::Durability(format!("WAL rotate: {e}")))?;
        *writer = fresh;
        Ok(true)
    }
}

/// The engine-side durability driver: owns the recovered [`DataDir`],
/// the `WalSink` wired into the store, and the background flusher and
/// snapshotter threads (joined on drop).
#[derive(Debug)]
pub struct Durability {
    dir: DataDir,
    options: DurabilityOptions,
    store: Arc<LabelStore>,
    sink: Arc<WalSink>,
    health: Arc<Health>,
    report: RecoveryReport,
    snapshot_mutex: Mutex<()>,
    last_snapshot_lsn: AtomicU64,
    last_snapshot_at: Mutex<Instant>,
    snapshots_total: Arc<Counter>,
    snapshot_lsn_gauge: Arc<Gauge>,
    snapshot_seconds: Arc<Histogram>,
    stop: Arc<AtomicBool>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Durability {
    /// Opens (creating if absent) `data_dir`, recovers the store from
    /// the newest valid snapshot plus WAL replay, wires the WAL sink
    /// into `store`, and starts the background flusher/snapshotter.
    ///
    /// The store must be empty and not yet serving. On return the store
    /// holds exactly the pre-crash durable state and every subsequent
    /// mutation is logged.
    pub fn open(
        data_dir: impl Into<PathBuf>,
        options: DurabilityOptions,
        store: Arc<LabelStore>,
        registry: &Registry,
    ) -> Result<Arc<Durability>, EngineError> {
        let dir = DataDir::open(data_dir.into())
            .map_err(|e| EngineError::Durability(format!("open data dir: {e}")))?;
        let mut report = RecoveryReport::default();

        // Phase 1: newest snapshot that passes format *and* semantic
        // validation. The semantic check stages the rebuilt entries so
        // a passing snapshot is installed without rebuilding twice.
        let mut staged: Vec<StagedEntry> = Vec::new();
        let pick = dir
            .pick_snapshot(|data| {
                staged.clear();
                for entry in &data.entries {
                    staged.push(stage_entry(entry)?);
                }
                Ok(())
            })
            .map_err(|e| EngineError::Durability(format!("scan snapshots: {e}")))?;
        for rejected in pick.rejected {
            report
                .rejected_snapshots
                .push((rejected.path, rejected.reason));
        }
        let mut cursor = 0u64;
        if let Some((_, data)) = pick.chosen {
            for (name, dataset, label, generation, applied_lsn) in staged.drain(..) {
                store.install_recovered(name, dataset, label, generation, applied_lsn);
            }
            store.install_retired(data.retired.iter().cloned());
            report.snapshot_lsn = Some(data.last_lsn);
            cursor = data.last_lsn;
        }

        // Phase 2: replay every segment in base order. Trust ends at
        // the first torn tail, LSN gap between segments, or unreadable
        // segment; everything at or after that point is quarantined.
        let segments = dir
            .list_segments()
            .map_err(|e| EngineError::Durability(format!("list segments: {e}")))?;
        let mut stop_at: Option<usize> = None;
        for (i, (base, path)) in segments.iter().enumerate() {
            if *base > cursor {
                report.stopped = Some(format!(
                    "segment gap: records {}..={} missing before {}",
                    cursor + 1,
                    base,
                    path.display()
                ));
                stop_at = Some(i);
                break;
            }
            let read = match read_segment(path) {
                Ok(read) => read,
                Err(e) => {
                    report.stopped = Some(format!("{}: {e}", path.display()));
                    stop_at = Some(i);
                    break;
                }
            };
            for (lsn, op) in &read.records {
                store.replay(*lsn, op)?;
                report.replayed_records += 1;
            }
            cursor = cursor.max(base + read.records.len() as u64);
            if let TailState::Torn { reason, offset } = read.tail {
                report.stopped = Some(format!(
                    "{}: torn tail at offset {offset}: {reason}",
                    path.display()
                ));
                stop_at = Some(i + 1);
                break;
            }
        }
        // Quarantine segments past the stop point, plus any segment
        // whose file name collides with the fresh segment recovery is
        // about to create (such a segment holds zero trusted records).
        if let Some(stop) = stop_at {
            for (_, path) in &segments[stop..] {
                report.quarantined.push(quarantine(path));
            }
        }
        let fresh_path = dir.path().join(pclabel_wal::wal::segment_file_name(cursor));
        if fresh_path.exists() {
            report.quarantined.push(quarantine(&fresh_path));
        }
        report.recovered_lsn = cursor;
        report.datasets = store.len();
        registry
            .counter(
                "pclabel_wal_quarantined_total",
                "WAL segments quarantined (renamed to *.torn) by boot recovery",
                &[],
            )
            .add(report.quarantined.len() as u64);

        // Phase 3: go live. A fresh segment at the recovered LSN —
        // never append to old files — the health state machine, and the
        // sink into the store.
        let writer = WalWriter::create(dir.path(), cursor)
            .map_err(|e| EngineError::Durability(format!("create WAL segment: {e}")))?;
        let health = Health::new(registry);
        let sink = Arc::new(WalSink::new(
            writer,
            options.fsync,
            registry,
            Arc::clone(&health),
        ));
        store.set_sink(Arc::clone(&sink));
        store.set_health(Arc::clone(&health));

        let snapshot_lsn = dir
            .list_snapshots()
            .ok()
            .and_then(|s| s.last().map(|&(lsn, _)| lsn))
            .unwrap_or(0);
        let durability = Arc::new(Durability {
            dir,
            options,
            store,
            sink,
            health,
            report,
            snapshot_mutex: Mutex::new(()),
            last_snapshot_lsn: AtomicU64::new(snapshot_lsn),
            last_snapshot_at: Mutex::new(Instant::now()),
            snapshots_total: registry.counter(
                "pclabel_snapshots_total",
                "Snapshots written since boot",
                &[],
            ),
            snapshot_lsn_gauge: registry.gauge(
                "pclabel_snapshot_lsn",
                "last_lsn of the newest on-disk snapshot",
                &[],
            ),
            snapshot_seconds: registry.histogram(
                "pclabel_snapshot_seconds",
                "Snapshot capture+write+rotate latency",
                &[],
            ),
            stop: Arc::new(AtomicBool::new(false)),
            threads: Mutex::new(Vec::new()),
        });
        durability.snapshot_lsn_gauge.set(snapshot_lsn);
        durability.spawn_background();
        Ok(durability)
    }

    fn spawn_background(self: &Arc<Self>) {
        let mut threads = self.threads.lock().expect("threads lock");
        if self.options.fsync == FsyncPolicy::Batch {
            let sink = Arc::clone(&self.sink);
            let health = Arc::clone(&self.health);
            let stop = Arc::clone(&self.stop);
            threads.push(
                std::thread::Builder::new()
                    .name("pclabel-wal-flush".into())
                    .spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            std::thread::sleep(Duration::from_millis(BATCH_INTERVAL_MS / 2 + 1));
                            // While degraded the probe thread owns the
                            // disk; pending acked-unsynced bytes reach
                            // the platter via the heal's sanitize+fsync.
                            if health.is_degraded() {
                                continue;
                            }
                            if let Err(e) = sink.flush_if_due() {
                                health.note_flush_failure(&e.to_string());
                            }
                        }
                        let _ = sink.flush_if_due();
                    })
                    .expect("spawn flusher"),
            );
        }
        let this = Arc::clone(self);
        let stop = Arc::clone(&self.stop);
        threads.push(
            std::thread::Builder::new()
                .name("pclabel-snapshot".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(200));
                        if this.health.is_degraded() {
                            continue;
                        }
                        let pending = this.sink.unsnapshotted_bytes.load(Ordering::Relaxed);
                        if pending >= this.options.snapshot_wal_bytes {
                            if let Err(e) = this.snapshot_now() {
                                this.health.note_snapshot_failure(&e.to_string());
                            }
                        }
                    }
                })
                .expect("spawn snapshotter"),
        );
        let this = Arc::clone(self);
        let stop = Arc::clone(&self.stop);
        threads.push(
            std::thread::Builder::new()
                .name("pclabel-health-probe".into())
                .spawn(move || {
                    // Seeded LCG drives the jitter; it only shapes retry
                    // pacing, never correctness.
                    let mut rng: u64 = 0x243f_6a88_85a3_08d3;
                    let mut attempt: u32 = 0;
                    while !stop.load(Ordering::Relaxed) {
                        if !this.health.is_degraded() {
                            attempt = 0;
                            std::thread::sleep(Duration::from_millis(25));
                            continue;
                        }
                        this.health.tick();
                        // Jittered exponential backoff: 100ms·2^attempt
                        // capped at 5s, scaled to 50–100%.
                        let exp = Duration::from_millis(100u64 << attempt.min(6))
                            .min(Duration::from_secs(5));
                        rng = rng
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let frac = ((rng >> 33) % 1000) as f64 / 1000.0;
                        let backoff = exp.mul_f64(0.5 + frac / 2.0);
                        // Sleep in slices so shutdown stays prompt.
                        let until = Instant::now() + backoff;
                        while Instant::now() < until && !stop.load(Ordering::Relaxed) {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        if stop.load(Ordering::Relaxed) || !this.health.is_degraded() {
                            continue;
                        }
                        this.health.count_recovery_attempt();
                        if this.try_heal().is_ok() {
                            attempt = 0;
                        } else {
                            attempt = attempt.saturating_add(1);
                        }
                    }
                })
                .expect("spawn health probe"),
        );
    }

    /// One degraded-mode recovery attempt: truncate the live segment
    /// back to its trusted prefix (removing torn bytes from partial or
    /// rolled-back appends) and fsync the clean tail, then run a full
    /// snapshot — which re-persists every published entry to a brand-new
    /// file, rotates to a fresh segment and prunes — and only then
    /// restore read-write. The fresh snapshot is the recovery-style
    /// revalidation: even if the old segment silently lost dirty pages
    /// to the failed fsync, replay starts from the new snapshot, so
    /// nothing acknowledged depends on the suspect tail.
    fn try_heal(&self) -> Result<(), EngineError> {
        self.sink.sanitize()?;
        self.snapshot_now()?;
        self.health.mark_healthy();
        Ok(())
    }

    /// The shared health state machine (degraded/read-only status).
    pub fn health(&self) -> &Arc<Health> {
        &self.health
    }

    /// The recovery report from boot.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.report
    }

    /// LSN of the last appended WAL record.
    pub fn last_lsn(&self) -> u64 {
        self.sink.last_lsn()
    }

    /// Captures the store, writes a snapshot, rotates the WAL, and
    /// prunes files no retained snapshot needs. Returns the snapshot's
    /// `last_lsn`. Concurrent calls serialize; mutations proceed freely
    /// while the capture runs (per-entry consistency is all the format
    /// needs).
    pub fn snapshot_now(&self) -> Result<u64, EngineError> {
        let _guard = self.snapshot_mutex.lock().expect("snapshot mutex");
        let t0 = Instant::now();

        let (entries, retired) = self.store.capture_durable();
        let mut snap_entries = Vec::with_capacity(entries.len());
        let mut min_required: Option<u64> = None;
        for entry in &entries {
            let snap = capture_entry(entry);
            min_required = Some(match min_required {
                Some(m) => m.min(snap.applied_lsn),
                None => snap.applied_lsn,
            });
            snap_entries.push(snap);
        }
        // Read the WAL position *after* capturing entry states: every
        // captured applied_lsn is ≤ this, so the snapshot plus records
        // above min_required_lsn reproduces at least everything up to
        // last_lsn for each entry.
        let last_lsn = self.sink.last_lsn();
        let data = SnapshotData {
            last_lsn,
            min_required_lsn: min_required.unwrap_or(last_lsn),
            entries: snap_entries,
            retired,
        };
        write_snapshot(self.dir.path(), &data)
            .map_err(|e| EngineError::Durability(format!("write snapshot: {e}")))?;
        self.sink.rotate(&self.dir)?;
        // Retention floor comes from the *retained* set, so a reader
        // falling back to the older snapshot still finds its records.
        let _ = self.dir.retire_old_snapshots();
        if let Ok(Some(floor)) = self.dir.truncation_floor() {
            let _ = self.dir.prune_segments(floor);
        }
        self.sink.unsnapshotted_bytes.store(0, Ordering::Relaxed);
        self.sink.unsnapshotted_gauge.set(0);
        self.last_snapshot_lsn.store(last_lsn, Ordering::Relaxed);
        *self.last_snapshot_at.lock().expect("snapshot clock") = Instant::now();
        self.snapshots_total.inc();
        self.snapshot_lsn_gauge.set(last_lsn);
        self.snapshot_seconds.observe(t0.elapsed().as_secs_f64());
        Ok(last_lsn)
    }

    /// A point-in-time durability summary for `stats`/`server_stats`.
    pub fn stats(&self) -> DurabilityStats {
        let segments = self.dir.list_segments().map(|s| s.len()).unwrap_or(0);
        let snapshots = self.dir.list_snapshots().map(|s| s.len()).unwrap_or(0);
        DurabilityStats {
            data_dir: self.dir.path().to_path_buf(),
            fsync: self.options.fsync,
            last_lsn: self.sink.last_lsn(),
            snapshot_lsn: self.last_snapshot_lsn.load(Ordering::Relaxed),
            snapshot_age_secs: self
                .last_snapshot_at
                .lock()
                .expect("snapshot clock")
                .elapsed()
                .as_secs_f64(),
            wal_bytes: self.dir.wal_bytes().unwrap_or(0),
            segments,
            snapshots,
        }
    }
}

impl Drop for Durability {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for handle in self.threads.lock().expect("threads lock").drain(..) {
            let _ = handle.join();
        }
    }
}

/// Renames an untrusted file to `<name>.torn` (ignored by recovery,
/// kept for post-mortems). Falls back to the original path if the
/// rename fails — recovery then still never reads it, because it only
/// opens `wal-*.log` names it has vetted.
fn quarantine(path: &std::path::Path) -> PathBuf {
    let mut target = path.as_os_str().to_owned();
    target.push(".torn");
    let target = PathBuf::from(target);
    match std::fs::rename(path, &target) {
        Ok(()) => target,
        Err(_) => path.to_path_buf(),
    }
}

/// A snapshot entry rebuilt and verified, ready to install:
/// `(name, dataset, label, generation, applied_lsn)`.
type StagedEntry = (String, Arc<Dataset>, Arc<Label>, u64, u64);

/// Rebuilds one snapshot entry into live store state, verifying that
/// the rebuilt label reproduces the stored `PC`/`VC` tables exactly. A
/// label is fully determined by `(dataset, sel)`, so any divergence
/// means the snapshot does not describe this build's semantics — the
/// caller rejects it and falls back to the previous snapshot.
fn stage_entry(entry: &SnapshotEntry) -> Result<StagedEntry, String> {
    let dataset = entry
        .dataset
        .clone()
        .into_dataset()
        .map_err(|e| format!("entry {:?}: {e}", entry.name))?;
    let dataset = Arc::new(dataset);
    let attrs = AttrSet::from_indices(entry.sel.iter().map(|&a| a as usize));
    let label = Label::build_parallel(&dataset, attrs, auto_threads(dataset.n_rows()));
    let rebuilt = pc_table(&label);
    if rebuilt != entry.pc {
        return Err(format!(
            "entry {:?}: rebuilt PC diverges from snapshot ({} vs {} patterns)",
            entry.name,
            rebuilt.len(),
            entry.pc.len()
        ));
    }
    let vc = vc_tables(&dataset, &label);
    if vc != entry.vc {
        return Err(format!(
            "entry {:?}: rebuilt VC diverges from snapshot",
            entry.name
        ));
    }
    Ok((
        entry.name.clone(),
        dataset,
        Arc::new(label),
        entry.generation,
        entry.applied_lsn,
    ))
}

/// Captures one live entry into its snapshot form.
fn capture_entry(entry: &Arc<StoreEntry>) -> SnapshotEntry {
    let (dataset, label, generation, applied_lsn) = entry.durable_snapshot();
    SnapshotEntry {
        name: entry.name().to_string(),
        generation,
        applied_lsn,
        sel: sel_of(&label),
        dataset: pclabel_wal::record::DatasetImage::from_dataset(&dataset),
        pc: pc_table(&label),
        vc: vc_tables(&dataset, &label),
    }
}

/// The label's `PC` as `(packed key, count)` rows: keys are the
/// pattern's value ids in `sel` order (missing terms as the `MISSING`
/// sentinel), sorted so snapshot bytes are deterministic.
fn pc_table(label: &Label) -> Vec<(Vec<u32>, u64)> {
    let sel: Vec<usize> = label.attrs().iter().collect();
    let mut rows: Vec<(Vec<u32>, u64)> = label
        .pc_entries()
        .into_iter()
        .map(|(pattern, count)| {
            let key = sel
                .iter()
                .map(|&a| pattern.value_of(a).unwrap_or(MISSING))
                .collect();
            (key, count)
        })
        .collect();
    rows.sort();
    rows
}

/// The label's `VC` as one table per **dataset** attribute (not just
/// the selected subset), each indexed by value id.
fn vc_tables(dataset: &Dataset, label: &Label) -> Vec<Vec<u64>> {
    let vc = label.value_counts();
    (0..dataset.n_attrs())
        .map(|attr| {
            let cardinality = dataset
                .schema()
                .attr(attr)
                .map(|a| a.cardinality())
                .unwrap_or(0);
            (0..cardinality as u32).map(|v| vc.count(attr, v)).collect()
        })
        .collect()
}
