//! # pclabel-engine
//!
//! The concurrent label-serving subsystem of the `pclabel` workspace:
//! where `pclabel-core` *computes* pattern count-based labels, this crate
//! *serves* them — a label is built once and then answers pattern-count
//! queries many times, which is exactly the profiling primitive
//! fitness-for-use and fairness audits need.
//!
//! ## Pieces
//!
//! * [`parallel`] — auto-sized chunked group counting: a drop-in front
//!   end over [`pclabel_core::counting::GroupCounts::build_parallel`]
//!   that picks worker counts from row count and available hardware;
//! * [`store`] — [`store::LabelStore`]: a registry of named datasets and
//!   their computed labels behind `Arc`/`RwLock`, supporting concurrent
//!   registration, lookup and label refresh (with generation counters);
//! * [`query`] — the batched query API: a [`query::QueryRequest`]
//!   estimates many patterns in one call; the planner answers **exactly**
//!   from the stored `PC` group map when the queried attributes are a
//!   subset of the label's `S`, and falls back to `Label::estimate`
//!   otherwise;
//! * [`cache`] — a sharded pattern→estimate cache with hit/miss counters,
//!   one per stored dataset, invalidated on label refresh;
//! * [`durability`] — the optional durability plane: crash recovery
//!   from snapshot + write-ahead-log replay, append-before-publish
//!   logging of every store mutation, and background snapshotting with
//!   WAL truncation (formats in the `pclabel-wal` crate, byte-level
//!   spec in `docs/ONDISK_FORMAT.md`);
//! * [`json`] — a dependency-free JSON reader/writer for the wire format;
//! * [`serve`] — the transport-agnostic [`serve::Dispatcher`] (request
//!   JSON in → response JSON out) plus the thin stdin/stdout driver
//!   behind the `pclabel-serve` binary. The `pclabel-net` crate mounts
//!   the same dispatcher behind a length-prefixed TCP protocol and an
//!   HTTP/1.1 adapter, so every transport answers identically.
//!
//! ## Quick start
//!
//! ```
//! use pclabel_engine::prelude::*;
//! use pclabel_data::generate::figure2_sample;
//!
//! let engine = Engine::new(EngineConfig::default());
//! engine
//!     .store()
//!     .register("census", figure2_sample(), LabelPolicy::SearchBound(5))
//!     .unwrap();
//!
//! let request = QueryRequest {
//!     id: Some("audit-1".into()),
//!     dataset: "census".into(),
//!     patterns: vec![PatternSpec::new([
//!         ("gender", "Female"),
//!         ("age group", "20-39"),
//!         ("marital status", "married"),
//!     ])],
//! };
//! let response = engine.execute(&request).unwrap();
//! assert_eq!(response.results[0].estimate, 3.0); // paper Example 2.12
//! ```
//!
//! ## `pclabel-serve`
//!
//! ```text
//! $ pclabel-serve < requests.jsonl > responses.jsonl
//! {"op":"register","dataset":"census","generator":"figure2","bound":5}
//! {"op":"query","dataset":"census","patterns":[{"gender":"Female","age group":"20-39","marital status":"married"}]}
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod durability;
pub mod health;
pub mod json;
pub mod parallel;
pub mod query;
pub mod serve;
pub mod store;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::cache::{CacheStats, ShardedCache};
    pub use crate::durability::{Durability, DurabilityOptions, DurabilityStats, RecoveryReport};
    pub use crate::health::{Health, HealthSnapshot};
    pub use crate::parallel::{auto_threads, group_counts, CountingOptions};
    pub use crate::query::{
        Engine, EngineConfig, PatternEstimate, PatternSpec, QueryRequest, QueryResponse, QueryStats,
    };
    pub use crate::serve::{Dispatcher, ServeSummary};
    pub use crate::store::{EngineError, LabelPolicy, LabelStore, StoreEntry};
}
