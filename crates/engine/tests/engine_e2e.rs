//! End-to-end tests for the serving subsystem, including the acceptance
//! round-trip: a 10,000-pattern batch served through the `pclabel-serve`
//! binary's stdin/stdout whose answers match `Label::estimate` ground
//! truth (and true counts on the exact path).

use std::io::Write;
use std::process::{Command, Stdio};
use std::sync::Arc;

use pclabel_core::attrset::AttrSet;
use pclabel_core::label::Label;
use pclabel_core::pattern::Pattern;
use pclabel_data::dataset::{Dataset, DatasetBuilder};
use pclabel_engine::json::Json;
use pclabel_engine::prelude::*;
use pclabel_engine::serve::{serve, Dispatcher};

/// Deterministic 600-row, 4-attribute dataset (no RNG, so the CSV sent to
/// the server and the in-process ground truth agree cell for cell).
fn synthetic_dataset() -> Dataset {
    let mut b = DatasetBuilder::new(["c0", "c1", "c2", "c3"]);
    for r in 0..600usize {
        let row = [
            format!("v{}", r % 5),
            format!("v{}", (r / 5) % 4),
            format!("v{}", (r * 7) % 3),
            format!("v{}", r % 2),
        ];
        b.push_row(&row).unwrap();
    }
    b.finish().with_name("synthetic")
}

fn synthetic_csv() -> String {
    let mut csv = String::from("c0,c1,c2,c3\n");
    for r in 0..600usize {
        csv.push_str(&format!(
            "v{},v{},v{},v{}\n",
            r % 5,
            (r / 5) % 4,
            (r * 7) % 3,
            r % 2
        ));
    }
    csv
}

/// 10,000 deterministic patterns cycling through four shapes: inside `S`
/// = {c0, c1} (exact path), straddling, outside, and full-tuple.
fn acceptance_patterns() -> Vec<Vec<(String, String)>> {
    let mut out = Vec::with_capacity(10_000);
    for i in 0..10_000usize {
        let terms: Vec<(String, String)> = match i % 4 {
            0 => vec![
                ("c0".into(), format!("v{}", i % 5)),
                ("c1".into(), format!("v{}", (i / 5) % 4)),
            ],
            1 => vec![
                ("c0".into(), format!("v{}", i % 5)),
                ("c2".into(), format!("v{}", i % 3)),
            ],
            2 => vec![("c2".into(), format!("v{}", i % 3))],
            _ => vec![
                ("c0".into(), format!("v{}", i % 5)),
                ("c1".into(), format!("v{}", (i / 7) % 4)),
                ("c2".into(), format!("v{}", i % 3)),
                ("c3".into(), format!("v{}", i % 2)),
            ],
        };
        out.push(terms);
    }
    out
}

/// Ground truth for one spec, straight from the paper's machinery.
fn ground_truth(dataset: &Dataset, label: &Label, terms: &[(String, String)]) -> f64 {
    let terms: Vec<(&str, &str)> = terms
        .iter()
        .map(|(a, v)| (a.as_str(), v.as_str()))
        .collect();
    let p = Pattern::parse(dataset, &terms).unwrap();
    label.estimate(&p)
}

fn acceptance_query_line() -> String {
    let patterns: Vec<Json> = acceptance_patterns()
        .into_iter()
        .map(|terms| Json::Obj(terms.into_iter().map(|(a, v)| (a, Json::Str(v))).collect()))
        .collect();
    Json::Obj(vec![
        ("op".to_string(), Json::str("query")),
        ("dataset".to_string(), Json::str("synthetic")),
        ("id".to_string(), Json::str("acceptance")),
        ("patterns".to_string(), Json::Arr(patterns)),
    ])
    .to_string()
}

fn register_line() -> String {
    Json::Obj(vec![
        ("op".to_string(), Json::str("register")),
        ("dataset".to_string(), Json::str("synthetic")),
        ("csv".to_string(), Json::Str(synthetic_csv())),
        (
            "label_attrs".to_string(),
            Json::Arr(vec![Json::str("c0"), Json::str("c1")]),
        ),
    ])
    .to_string()
}

/// Checks the acceptance batch response against ground truth.
fn assert_batch_matches(response: &Json) {
    let dataset = synthetic_dataset();
    let label = Label::build(&dataset, AttrSet::from_indices([0, 1]));
    let specs = acceptance_patterns();

    assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{response}");
    let results = response.get("results").and_then(Json::as_array).unwrap();
    assert_eq!(results.len(), 10_000);

    for (i, (result, terms)) in results.iter().zip(&specs).enumerate() {
        let served = result
            .get("estimate")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("pattern {i} failed: {result}"));
        let expected = ground_truth(&dataset, &label, terms);
        assert_eq!(served, expected, "pattern {i} ({terms:?})");
        // Exact path: Attr(p) ⊆ S ⇒ flagged exact and equal to the true
        // count (paper §III-A).
        if i % 4 == 0 {
            assert_eq!(result.get("exact"), Some(&Json::Bool(true)), "pattern {i}");
            let terms_ref: Vec<(&str, &str)> = terms
                .iter()
                .map(|(a, v)| (a.as_str(), v.as_str()))
                .collect();
            let p = Pattern::parse(&dataset, &terms_ref).unwrap();
            assert_eq!(served, p.count_in(&dataset) as f64, "pattern {i} exactness");
        }
    }

    let stats = response.get("stats").unwrap();
    assert_eq!(stats.get("failed").and_then(Json::as_u64), Some(0));
    // 2,500 exact-shape patterns but deduplicated by the cache: every
    // answer is either computed (exact/estimated) or a cache hit.
    let computed = stats.get("exact").and_then(Json::as_u64).unwrap()
        + stats.get("estimated").and_then(Json::as_u64).unwrap()
        + stats.get("cache_hits").and_then(Json::as_u64).unwrap();
    assert_eq!(computed, 10_000);
}

#[test]
fn acceptance_10k_batch_through_serve_loop() {
    let dispatcher = Dispatcher::with_config(EngineConfig::default());
    let input = format!("{}\n{}\n", register_line(), acceptance_query_line());
    let mut out = Vec::new();
    let summary = serve(&dispatcher, input.as_bytes(), &mut out).unwrap();
    assert_eq!(summary.errors, 0);
    let text = String::from_utf8(out).unwrap();
    let responses: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
    assert_eq!(responses.len(), 2);
    assert_batch_matches(&responses[1]);
}

#[test]
fn acceptance_10k_batch_through_binary_stdin_stdout() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_pclabel-serve"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn pclabel-serve");
    {
        let stdin = child.stdin.as_mut().expect("child stdin");
        write!(stdin, "{}\n{}\n", register_line(), acceptance_query_line()).unwrap();
    }
    let output = child.wait_with_output().expect("pclabel-serve exits");
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    let responses: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
    assert_eq!(responses.len(), 2);
    assert_eq!(
        responses[0].get("ok"),
        Some(&Json::Bool(true)),
        "{}",
        responses[0]
    );
    assert_batch_matches(&responses[1]);
}

#[test]
fn concurrent_clients_share_one_store() {
    // One engine, many threads: registrations, queries and refreshes
    // interleave without panics, poisoning or stale-cache answers.
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    engine
        .store()
        .register(
            "synthetic",
            synthetic_dataset(),
            LabelPolicy::Attrs(AttrSet::from_indices([0, 1])),
        )
        .unwrap();

    std::thread::scope(|s| {
        for t in 0..8usize {
            let engine = Arc::clone(&engine);
            s.spawn(move || {
                for i in 0..50usize {
                    let request = QueryRequest {
                        id: None,
                        dataset: "synthetic".into(),
                        patterns: vec![PatternSpec {
                            terms: vec![
                                ("c0".into(), format!("v{}", (t + i) % 5)),
                                ("c1".into(), format!("v{}", i % 4)),
                            ],
                        }],
                    };
                    let response = engine.execute(&request).unwrap();
                    let r = &response.results[0];
                    assert!(r.error.is_none());
                    assert!(r.exact);
                    // Exact-path answers stay correct under concurrency.
                    let d = synthetic_dataset();
                    let p = Pattern::parse(
                        &d,
                        &[
                            ("c0", format!("v{}", (t + i) % 5).as_str()),
                            ("c1", format!("v{}", i % 4).as_str()),
                        ],
                    )
                    .unwrap();
                    assert_eq!(r.estimate, p.count_in(&d) as f64);
                }
            });
        }
        // One thread refreshes concurrently; queries must never error.
        let engine_refresh = Arc::clone(&engine);
        s.spawn(move || {
            for _ in 0..10 {
                engine_refresh
                    .store()
                    .refresh(
                        "synthetic",
                        LabelPolicy::Attrs(AttrSet::from_indices([0, 1])),
                    )
                    .unwrap();
            }
        });
    });
    let entry = engine.store().get("synthetic").unwrap();
    assert_eq!(entry.generation(), 10);
}
