//! Fault-injection tests for the durability plane: degraded mode,
//! self-healing recovery, and snapshot-failure accounting.
//!
//! The fault plan is process-global, so these tests live in their own
//! integration binary and serialize on a mutex; a guard disarms the
//! plan on drop even when an assertion fails.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use pclabel_data::generate::figure2_sample;
use pclabel_engine::durability::{Durability, DurabilityOptions};
use pclabel_engine::store::{EngineError, LabelPolicy, LabelStore};
use pclabel_telemetry::{Registry, SnapshotValue};
use pclabel_wal::faults::{install, FaultPlan};
use pclabel_wal::wal::FsyncPolicy;

static SERIAL: Mutex<()> = Mutex::new(());
static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Holds the serialization lock and disarms the plan on drop.
struct Armed(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for Armed {
    fn drop(&mut self) {
        install(None);
    }
}

fn arm(spec: &str) -> Armed {
    let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let plan = FaultPlan::parse(spec).expect("plan parses");
    install(Some(Arc::new(plan)));
    Armed(guard)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pclabel-faults-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &PathBuf, registry: &Registry) -> (Arc<LabelStore>, Arc<Durability>) {
    let store = Arc::new(LabelStore::new());
    let options = DurabilityOptions {
        fsync: FsyncPolicy::Always,
        snapshot_wal_bytes: u64::MAX,
    };
    let durability =
        Durability::open(dir, options, Arc::clone(&store), registry).expect("recovery");
    (store, durability)
}

fn row(age: &str) -> Vec<Option<String>> {
    vec![
        Some("Male".to_string()),
        Some(age.to_string()),
        Some("Caucasian".to_string()),
        Some("single".to_string()),
    ]
}

fn gauge(registry: &Registry, name: &str) -> u64 {
    registry
        .snapshot()
        .iter()
        .find_map(|series| match (&series.name, &series.value) {
            (n, SnapshotValue::Gauge(v)) if n == name => Some(*v),
            _ => None,
        })
        .unwrap_or_else(|| panic!("gauge {name} not registered"))
}

fn counter(registry: &Registry, name: &str) -> u64 {
    registry
        .snapshot()
        .iter()
        .find_map(|series| match (&series.name, &series.value) {
            (n, SnapshotValue::Counter(v)) if n == name => Some(*v),
            _ => None,
        })
        .unwrap_or_else(|| panic!("counter {name} not registered"))
}

/// The satellite gate: a snapshot attempt that fails (here: its rename
/// is injected to fail) must advance neither `pclabel_snapshot_lsn` nor
/// `pclabel_snapshots_total`, and must never publish a `.snap` file.
#[test]
fn failing_snapshot_does_not_advance_snapshot_lsn() {
    let registry = Registry::new();
    let dir = temp_dir("snapfail");
    let (store, durability) = open(&dir, &registry);
    store
        .register("census", figure2_sample(), LabelPolicy::SearchBound(5))
        .expect("register");
    let first = durability.snapshot_now().expect("clean snapshot");
    assert_eq!(gauge(&registry, "pclabel_snapshot_lsn"), first);
    let snapshots_before = counter(&registry, "pclabel_snapshots_total");
    store
        .append_rows("census", &[row("age-x")])
        .expect("append");

    {
        let _armed = arm("snap.rename=eio@0..");
        let err = durability.snapshot_now().expect_err("rename injected");
        assert!(
            err.to_string().contains("write snapshot"),
            "unexpected error: {err}"
        );
        assert_eq!(
            gauge(&registry, "pclabel_snapshot_lsn"),
            first,
            "failed snapshot must not advance the gauge"
        );
        assert_eq!(
            counter(&registry, "pclabel_snapshots_total"),
            snapshots_before
        );
    }

    // Disarmed: the next attempt lands and the gauge moves.
    let healed = durability.snapshot_now().expect("snapshot after disarm");
    assert!(healed > first);
    assert_eq!(gauge(&registry, "pclabel_snapshot_lsn"), healed);
}

/// The tentpole gate, in-process: a persistent WAL fsync failure flips
/// the store into read-only degraded mode (mutators rejected with the
/// typed error, queries still served), the probe thread heals it once
/// the disk recovers, and the unacknowledged record never survives to a
/// reopened store.
#[test]
fn wal_failure_degrades_store_and_probe_heals_it() {
    let registry = Registry::new();
    let dir = temp_dir("degrade");
    let rows_at_rest;
    {
        let (store, durability) = open(&dir, &registry);
        store
            .register("census", figure2_sample(), LabelPolicy::SearchBound(5))
            .expect("register");

        {
            let _armed = arm("wal.fsync=eio@0..");
            let err = store
                .append_rows("census", &[row("ghost")])
                .expect_err("fsync injected");
            assert!(matches!(err, EngineError::Degraded(_)), "got {err}");
            assert!(durability.health().is_degraded());
            assert_eq!(gauge(&registry, "pclabel_health_state"), 1);
            assert!(counter(&registry, "pclabel_wal_append_failures_total") >= 1);

            // Mutators fail fast with the retained root cause...
            let err = store
                .register("other", figure2_sample(), LabelPolicy::SearchBound(5))
                .expect_err("degraded rejects mutators");
            match &err {
                EngineError::Degraded(reason) => {
                    assert!(reason.contains("WAL fsync"), "reason: {reason}")
                }
                other => panic!("expected Degraded, got {other}"),
            }
            // ...while reads keep serving the published state.
            let entry = store.get("census").expect("query while degraded");
            let (dataset, _, _) = entry.snapshot();
            assert_eq!(dataset.n_rows(), 18, "ghost row must not be visible");
        }

        // Fault cleared: the probe thread must heal without help.
        let deadline = Instant::now() + Duration::from_secs(20);
        while durability.health().is_degraded() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(!durability.health().is_degraded(), "probe did not heal");
        assert_eq!(gauge(&registry, "pclabel_health_state"), 0);
        assert!(counter(&registry, "pclabel_recovery_attempts_total") >= 1);

        // Read-write is restored atomically: mutations work again.
        store
            .append_rows("census", &[row("age-post-heal")])
            .expect("append after heal");
        let (dataset, _, _) = store.get("census").expect("entry").snapshot();
        rows_at_rest = dataset.n_rows();
        assert_eq!(rows_at_rest, 19);
    }

    // Reopen: the acked post-heal row survives, the unacked ghost row
    // (appended but never fsynced or published) does not resurrect.
    let (store, _durability) = open(&dir, &Registry::new());
    let (dataset, _, _) = store.get("census").expect("entry").snapshot();
    assert_eq!(dataset.n_rows(), rows_at_rest);
    let has_ghost = (0..dataset.n_rows()).any(|r| {
        (0..dataset.n_attrs())
            .any(|a| dataset.value(r, a).map(|id| dataset.label_of(a, id)) == Some("ghost"))
    });
    assert!(!has_ghost, "unacknowledged record replayed after heal");
}
