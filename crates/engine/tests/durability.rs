//! End-to-end durability tests: a store mutated through the WAL sink
//! must reopen to exactly the same state, through every combination of
//! snapshot presence, WAL tails and snapshot corruption.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use pclabel_core::attrset::AttrSet;
use pclabel_data::generate::figure2_sample;
use pclabel_engine::durability::{Durability, DurabilityOptions};
use pclabel_engine::store::{LabelPolicy, LabelStore};
use pclabel_telemetry::Registry;
use pclabel_wal::record::DatasetImage;
use pclabel_wal::wal::FsyncPolicy;

use proptest::prelude::*;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh, empty temp data directory unique to this test process.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pclabel-durability-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn options() -> DurabilityOptions {
    DurabilityOptions {
        fsync: FsyncPolicy::Always,
        // Keep the background snapshotter quiet; tests snapshot
        // explicitly where they mean to.
        snapshot_wal_bytes: u64::MAX,
    }
}

/// Opens a fresh store over `dir` and recovers it.
fn open(dir: &PathBuf) -> (Arc<LabelStore>, Arc<Durability>) {
    let store = Arc::new(LabelStore::new());
    let durability =
        Durability::open(dir, options(), Arc::clone(&store), &Registry::new()).expect("recovery");
    (store, durability)
}

/// Everything that defines a store's logical state, in comparable form.
fn state_of(store: &LabelStore) -> Vec<(String, u64, DatasetImage, Vec<usize>, u64)> {
    store
        .list()
        .iter()
        .map(|entry| {
            let (dataset, label, generation) = entry.snapshot();
            (
                entry.name().to_string(),
                generation,
                DatasetImage::from_dataset(&dataset),
                label.attrs().iter().collect(),
                label.pattern_count_size(),
            )
        })
        .collect()
}

fn row(gender: &str, age: &str, race: &str, marital: &str) -> Vec<Option<String>> {
    vec![
        Some(gender.to_string()),
        Some(age.to_string()),
        Some(race.to_string()),
        Some(marital.to_string()),
    ]
}

#[test]
fn reopen_replays_wal_to_identical_state() {
    let dir = temp_dir("replay");
    let (store, durability) = open(&dir);
    store
        .register("census", figure2_sample(), LabelPolicy::SearchBound(5))
        .unwrap();
    store
        .append_rows(
            "census",
            &[
                row("Female", "20-39", "Caucasian", "married"),
                row("Male", "60+", "Caucasian", "single"), // new value → rebuild path
            ],
        )
        .unwrap();
    store
        .refresh("census", LabelPolicy::Attrs(AttrSet::from_indices([0, 1])))
        .unwrap();
    store
        .register("scratch", figure2_sample(), LabelPolicy::SearchBound(3))
        .unwrap();
    assert!(store.remove("scratch").unwrap());
    let expected = state_of(&store);
    assert_eq!(durability.last_lsn(), 5, "five mutations, five records");
    drop(durability);
    drop(store);

    let (store2, durability2) = open(&dir);
    assert_eq!(state_of(&store2), expected);
    let report = durability2.recovery();
    assert_eq!(report.snapshot_lsn, None);
    assert_eq!(report.replayed_records, 5);
    assert_eq!(report.recovered_lsn, 5);
    assert_eq!(report.datasets, 1);
    assert!(report.stopped.is_none(), "{:?}", report.stopped);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_plus_tail_replay_compose() {
    let dir = temp_dir("snapshot");
    let (store, durability) = open(&dir);
    store
        .register(
            "census",
            figure2_sample(),
            LabelPolicy::Attrs(AttrSet::from_indices([1, 3])),
        )
        .unwrap();
    store
        .append_rows("census", &[row("Female", "20-39", "Caucasian", "married")])
        .unwrap();
    let snap_lsn = durability.snapshot_now().unwrap();
    assert_eq!(snap_lsn, 2);
    // Ops after the snapshot live only in the WAL tail.
    store
        .append_rows("census", &[row("Male", "under 20", "Hispanic", "single")])
        .unwrap();
    store
        .refresh("census", LabelPolicy::Attrs(AttrSet::from_indices([0, 3])))
        .unwrap();
    let expected = state_of(&store);
    drop(durability);
    drop(store);

    let (store2, durability2) = open(&dir);
    assert_eq!(state_of(&store2), expected);
    let report = durability2.recovery();
    assert_eq!(report.snapshot_lsn, Some(2));
    assert_eq!(report.recovered_lsn, 4);
    assert!(report.rejected_snapshots.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_newest_snapshot_falls_back_to_predecessor() {
    let dir = temp_dir("fallback");
    let (store, durability) = open(&dir);
    store
        .register(
            "census",
            figure2_sample(),
            LabelPolicy::Attrs(AttrSet::from_indices([1, 3])),
        )
        .unwrap();
    durability.snapshot_now().unwrap();
    store
        .append_rows("census", &[row("Female", "20-39", "Caucasian", "married")])
        .unwrap();
    durability.snapshot_now().unwrap();
    let expected = state_of(&store);
    drop(durability);
    drop(store);

    // Flip a byte in the newest snapshot's middle: its section CRCs
    // must reject it and recovery must fall back to the older one,
    // replaying the WAL records the fallback does not cover.
    let newest = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "snap"))
        .max()
        .expect("snapshots on disk");
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&newest, &bytes).unwrap();

    let (store2, durability2) = open(&dir);
    assert_eq!(state_of(&store2), expected);
    let report = durability2.recovery();
    assert_eq!(
        report.snapshot_lsn,
        Some(1),
        "fell back to the older snapshot"
    );
    assert_eq!(report.rejected_snapshots.len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn generations_stay_monotone_across_restart_and_reregister() {
    let dir = temp_dir("monotone");
    let (store, durability) = open(&dir);
    store
        .register(
            "census",
            figure2_sample(),
            LabelPolicy::Attrs(AttrSet::from_indices([1, 3])),
        )
        .unwrap();
    store
        .append_rows("census", &[row("Female", "20-39", "Caucasian", "married")])
        .unwrap();
    assert!(store.remove("census").unwrap());
    drop(durability);
    drop(store);

    // The retirement must survive the restart: re-registering resumes
    // above the pre-restart generation, never back at 0.
    let (store2, durability2) = open(&dir);
    assert_eq!(store2.len(), 0);
    assert_eq!(store2.retired_generation("census"), Some(1));
    let entry = store2
        .register("census", figure2_sample(), LabelPolicy::SearchBound(5))
        .unwrap();
    assert_eq!(entry.generation(), 2);
    drop(durability2);
    drop(store2);

    // And again through a snapshot instead of raw WAL replay.
    let (store3, durability3) = open(&dir);
    durability3.snapshot_now().unwrap();
    assert!(store3.remove("census").unwrap());
    drop(durability3);
    drop(store3);
    let (store4, _durability4) = open(&dir);
    assert_eq!(store4.retired_generation("census"), Some(2));
    let entry = store4
        .register("census", figure2_sample(), LabelPolicy::SearchBound(5))
        .unwrap();
    assert_eq!(entry.generation(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_wal_tail_recovers_prefix() {
    let dir = temp_dir("torn");
    let (store, durability) = open(&dir);
    store
        .register(
            "census",
            figure2_sample(),
            LabelPolicy::Attrs(AttrSet::from_indices([1, 3])),
        )
        .unwrap();
    store
        .append_rows("census", &[row("Female", "20-39", "Caucasian", "married")])
        .unwrap();
    store
        .append_rows("census", &[row("Male", "40-59", "Asian", "single")])
        .unwrap();
    drop(durability);
    let expected_rows = 19; // 18 + first append; the second is torn off
    drop(store);

    // Tear the last record: chop bytes off the only segment's tail.
    let segment = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|x| x == "log"))
        .expect("segment on disk");
    let bytes = std::fs::read(&segment).unwrap();
    std::fs::write(&segment, &bytes[..bytes.len() - 7]).unwrap();

    let (store2, durability2) = open(&dir);
    let entry = store2.get("census").unwrap();
    assert_eq!(entry.dataset().n_rows(), expected_rows);
    assert_eq!(entry.generation(), 1);
    let report = durability2.recovery();
    assert_eq!(report.recovered_lsn, 2);
    assert!(report.stopped.as_deref().unwrap_or("").contains("torn"));
    // The torn segment was quarantined and a fresh one opened; writes
    // continue from the recovered LSN.
    store2
        .append_rows("census", &[row("Male", "40-59", "Asian", "single")])
        .unwrap();
    assert_eq!(store2.get("census").unwrap().applied_lsn(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- replay ≡ in-memory, property-tested over random op sequences ----

#[derive(Debug, Clone)]
enum Op {
    Register(u8),
    AppendSeen(u8),
    AppendNew(u8),
    Refresh(u8),
    Remove(u8),
    Snapshot,
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..6, 0u8..2).prop_map(|(kind, i)| match kind {
        0 => Op::Register(i),
        1 => Op::AppendSeen(i),
        2 => Op::AppendNew(i),
        3 => Op::Refresh(i),
        4 => Op::Remove(i),
        _ => Op::Snapshot,
    })
}

fn name_of(i: u8) -> String {
    format!("d{i}")
}

/// Applies one op to a store, mirroring exactly what the durable and
/// the in-memory runs both do. `fresh` tags appended values so "new
/// dictionary value" appends stay new per call.
fn apply(store: &LabelStore, op: &Op, fresh: &mut u32) {
    match op {
        Op::Register(i) => {
            let _ = store.register(
                name_of(*i),
                figure2_sample(),
                LabelPolicy::Attrs(AttrSet::from_indices([1, 3])),
            );
        }
        Op::AppendSeen(i) => {
            let _ = store.append_rows(
                &name_of(*i),
                &[row("Female", "20-39", "Caucasian", "married")],
            );
        }
        Op::AppendNew(i) => {
            *fresh += 1;
            let _ = store.append_rows(
                &name_of(*i),
                &[row("Male", &format!("age-{fresh}"), "Caucasian", "single")],
            );
        }
        Op::Refresh(i) => {
            let _ = store.refresh(
                &name_of(*i),
                LabelPolicy::Attrs(AttrSet::from_indices([0, 3])),
            );
        }
        Op::Remove(i) => {
            let _ = store.remove(&name_of(*i));
        }
        Op::Snapshot => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any op sequence, durable-logged then recovered, equals the same
    /// sequence applied to a plain in-memory store — with snapshots
    /// taken at arbitrary points in between.
    #[test]
    fn recovery_equals_in_memory(ops in proptest::collection::vec(arb_op(), 1..14)) {
        let dir = temp_dir("prop");
        let (durable, durability) = open(&dir);
        let memory = LabelStore::new();
        let (mut fresh_a, mut fresh_b) = (0u32, 0u32);
        for op in &ops {
            if matches!(op, Op::Snapshot) {
                durability.snapshot_now().unwrap();
            }
            apply(&durable, op, &mut fresh_a);
            apply(&memory, op, &mut fresh_b);
        }
        prop_assert_eq!(state_of(&durable), state_of(&memory));
        drop(durability);
        drop(durable);

        let (recovered, _durability) = open(&dir);
        prop_assert_eq!(state_of(&recovered), state_of(&memory));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
