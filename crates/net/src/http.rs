//! A minimal HTTP/1.1 adapter over the shared dispatcher.
//!
//! Routes:
//!
//! * `GET /healthz` — liveness probe (the dispatcher's `health` op);
//! * `GET /stats?dataset=NAME` — per-dataset stats; without a `dataset`
//!   parameter this degrades to the `list` op;
//! * `GET /metrics` — the telemetry registry in Prometheus text format
//!   (`text/plain; version=0.0.4`). Served at the route level without
//!   dispatching, so a scrape never perturbs the request counters it
//!   reports;
//! * `GET /debug/traces?op=NAME&slowest=1&id=N`, `GET /debug/memory`,
//!   `GET /debug/conns` — the introspection plane: retained request
//!   traces, per-component memory accounting and the live connection
//!   table. Served at the route level without dispatching, like
//!   `/metrics`, so inspection never perturbs what it reports;
//! * `HEAD` on any of the GET routes — identical status line and
//!   headers (including the `Content-Length` the GET would carry), no
//!   body;
//! * `POST /query`, `POST /register`, `POST /append_rows`,
//!   `POST /refresh`, `POST /drop`, `POST /estimate_multi`, … — the JSON
//!   body is the protocol request;
//!   the op implied by the path is injected when the body omits `"op"`
//!   (and a mismatch is rejected);
//! * `POST /` — generic dispatch; the body must carry `"op"` itself.
//!
//! Bodies are exactly the serve-protocol JSON objects, so an HTTP client
//! and a framed-TCP client receive byte-identical payloads. Successful
//! dispatches return `200 OK`; dispatches answering `"ok": false` return
//! `400 Bad Request` with the same JSON body; transport-level failures
//! (unknown path, bad framing, oversized body) use conventional 4xx
//! codes with a JSON error body of the same shape.
//!
//! Bodied requests are framed by `Content-Length` or by
//! `Transfer-Encoding: chunked` (decoded incrementally by
//! [`ChunkedDecoder`]; chunk extensions are ignored and trailers
//! tolerated); other transfer-codings are rejected with 501.
//! Connections are keep-alive per HTTP/1.1 defaults: `Connection:
//! close` — or any transport error — ends the connection.

use std::io::{self, Read, Write};
use std::net::TcpStream;

use pclabel_engine::json::Json;

use crate::conntrack::{ConnState, ConnTrack};
use crate::server::{process_line, process_request, Shared};

/// Total byte cap on the request line + headers of one request.
pub(crate) const MAX_HEAD_BYTES: usize = 16 * 1024;

/// The interim response for `Expect: 100-continue` requests.
pub(crate) const CONTINUE: &[u8] = b"HTTP/1.1 100 Continue\r\n\r\n";

/// One parsed request.
pub(crate) struct Request {
    pub(crate) method: String,
    pub(crate) target: String,
    pub(crate) version: String,
    /// Header names lowercased.
    pub(crate) headers: Vec<(String, String)>,
    pub(crate) body: Vec<u8>,
}

impl Request {
    pub(crate) fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection survives this exchange (HTTP/1.1 defaults
    /// + `Connection` override).
    pub(crate) fn keep_alive(&self) -> bool {
        let connection = self.header("connection").unwrap_or("").to_ascii_lowercase();
        if connection.contains("close") {
            return false;
        }
        self.version == "HTTP/1.1" || connection.contains("keep-alive")
    }

    /// Whether this request carries `Expect: 100-continue`.
    pub(crate) fn expects_continue(&self) -> bool {
        self.header("expect")
            .is_some_and(|v| v.to_ascii_lowercase().contains("100-continue"))
    }
}

/// Parses a request head (everything before the `\r\n\r\n`, already
/// UTF-8-checked) into a body-less [`Request`]. Errors are
/// `(status, message)` pairs for the error response. Shared by the
/// blocking adapter below and the reactor's incremental state machine.
pub(crate) fn parse_head(head: &str) -> Result<Request, (u16, &'static str)> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err((400, "malformed request line"));
    };
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err((400, "malformed header line"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Request {
        method: method.to_string(),
        target: target.to_string(),
        version: version.to_string(),
        headers,
        body: Vec::new(),
    })
}

/// How a request's body is delimited on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BodyFraming {
    /// A fixed `Content-Length` (0 when the header is absent).
    Length(usize),
    /// `Transfer-Encoding: chunked`, decoded incrementally by
    /// [`ChunkedDecoder`].
    Chunked,
}

/// The declared body framing of `request`, rejecting transfer-codings
/// this adapter does not speak (anything other than a sole `chunked`).
pub(crate) fn body_framing(request: &Request) -> Result<BodyFraming, (u16, &'static str)> {
    if let Some(te) = request.header("transfer-encoding") {
        if te.trim().eq_ignore_ascii_case("chunked") {
            return Ok(BodyFraming::Chunked);
        }
        return Err((501, "transfer-encoding is not supported"));
    }
    match request.header("content-length") {
        None => Ok(BodyFraming::Length(0)),
        Some(v) => v
            .parse::<usize>()
            .map(BodyFraming::Length)
            .map_err(|_| (400, "invalid Content-Length")),
    }
}

/// Longest tolerated chunk-size line (hex size + optional extensions).
const MAX_CHUNK_LINE: usize = 1024;

enum ChunkState {
    /// Expecting a `SIZE[;ext]\r\n` line.
    SizeLine,
    /// Inside a chunk's data, `remaining` bytes still owed.
    Data {
        remaining: usize,
    },
    /// Expecting the `\r\n` that terminates a chunk's data.
    DataCrlf,
    /// After the `0\r\n` chunk: tolerate trailer lines until a blank
    /// line; `seen` caps their total size.
    Trailers {
        seen: usize,
    },
    Done,
}

/// Incremental `Transfer-Encoding: chunked` decoder shared by both
/// connection models. Feed it raw bytes as they arrive; it consumes
/// what it can from the front of the buffer and accumulates the decoded
/// body, so the raw buffer never holds more than one partial chunk's
/// worth of unconsumed bytes.
pub(crate) struct ChunkedDecoder {
    state: ChunkState,
    body: Vec<u8>,
    /// Decoded-body cap (the frame/body size limit); exceeding it is a
    /// 413, reported before the offending chunk's data is buffered.
    max: usize,
}

impl ChunkedDecoder {
    pub(crate) fn new(max: usize) -> ChunkedDecoder {
        ChunkedDecoder {
            state: ChunkState::SizeLine,
            body: Vec::new(),
            max,
        }
    }

    /// The decoded body, once [`ChunkedDecoder::decode`] returned
    /// `Ok(true)`.
    pub(crate) fn into_body(self) -> Vec<u8> {
        self.body
    }

    /// Consumes as much of `buf` as possible. `Ok(true)` = the body is
    /// complete (trailers included); `Ok(false)` = more bytes needed;
    /// `Err` = protocol error or body-too-large, `(status, message)`
    /// shaped like every other transport error. Errors are terminal —
    /// with an indeterminate stream position the connection must close.
    pub(crate) fn decode(&mut self, buf: &mut Vec<u8>) -> Result<bool, (u16, &'static str)> {
        let mut pos = 0usize;
        let result = loop {
            match self.state {
                ChunkState::Done => break Ok(true),
                ChunkState::SizeLine => {
                    let Some(rel) = find_subsequence(&buf[pos..], b"\r\n") else {
                        if buf.len() - pos > MAX_CHUNK_LINE {
                            break Err((400, "chunk size line too long"));
                        }
                        break Ok(false);
                    };
                    if rel > MAX_CHUNK_LINE {
                        break Err((400, "chunk size line too long"));
                    }
                    let line = &buf[pos..pos + rel];
                    // Chunk extensions (`;name=value`) are ignored.
                    let size_part = line.split(|&b| b == b';').next().unwrap_or(&[]);
                    let size = std::str::from_utf8(size_part)
                        .ok()
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .and_then(|s| usize::from_str_radix(s, 16).ok());
                    let Some(size) = size else {
                        break Err((400, "invalid chunk size"));
                    };
                    pos += rel + 2;
                    if size == 0 {
                        self.state = ChunkState::Trailers { seen: 0 };
                    } else if self.body.len().saturating_add(size) > self.max {
                        break Err((413, "request body exceeds the frame size limit"));
                    } else {
                        self.state = ChunkState::Data { remaining: size };
                    }
                }
                ChunkState::Data { remaining } => {
                    let take = (buf.len() - pos).min(remaining);
                    self.body.extend_from_slice(&buf[pos..pos + take]);
                    pos += take;
                    if take == remaining {
                        self.state = ChunkState::DataCrlf;
                    } else {
                        self.state = ChunkState::Data {
                            remaining: remaining - take,
                        };
                        break Ok(false);
                    }
                }
                ChunkState::DataCrlf => {
                    if buf.len() - pos < 2 {
                        break Ok(false);
                    }
                    if &buf[pos..pos + 2] != b"\r\n" {
                        break Err((400, "chunk data is not CRLF-terminated"));
                    }
                    pos += 2;
                    self.state = ChunkState::SizeLine;
                }
                ChunkState::Trailers { seen } => {
                    let Some(rel) = find_subsequence(&buf[pos..], b"\r\n") else {
                        if seen + (buf.len() - pos) > MAX_HEAD_BYTES {
                            break Err((431, "trailers too large"));
                        }
                        break Ok(false);
                    };
                    pos += rel + 2;
                    if rel == 0 {
                        self.state = ChunkState::Done;
                        break Ok(true);
                    }
                    let seen = seen + rel + 2;
                    if seen > MAX_HEAD_BYTES {
                        break Err((431, "trailers too large"));
                    }
                    // Trailer fields are tolerated and discarded.
                    self.state = ChunkState::Trailers { seen };
                }
            }
        };
        buf.drain(..pos);
        result
    }
}

/// Why reading a request stopped.
enum ReadRequest {
    Ok(Request),
    /// Peer closed (or idle shutdown) before a request started.
    Closed,
    /// Malformed/oversized head or body: respond with this status and
    /// close.
    Bad(u16, &'static str),
}

/// Buffered connection state; `carry` holds bytes of the next pipelined
/// request read past the previous one's end.
struct Conn<'a> {
    stream: TcpStream,
    carry: Vec<u8>,
    track: &'a ConnTrack,
}

impl Conn<'_> {
    /// Pulls more bytes into `carry`. `Ok(false)` means EOF.
    fn fill(&mut self, shared: &Shared, have_partial: bool) -> io::Result<bool> {
        let mut chunk = [0u8; 4096];
        loop {
            if shared.shutting_down() && !have_partial {
                return Ok(false);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(false),
                Ok(n) => {
                    self.carry.extend_from_slice(&chunk[..n]);
                    self.track.add_in(n as u64);
                    return Ok(true);
                }
                Err(e)
                    if !have_partial
                        && matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) =>
                {
                    continue; // idle between requests; re-check shutdown
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads one full request (head + body) from the connection.
    fn read_request(&mut self, shared: &Shared) -> ReadRequest {
        // Find the end of the head, reading as needed.
        let head_end = loop {
            if let Some(pos) = find_subsequence(&self.carry, b"\r\n\r\n") {
                break pos;
            }
            if self.carry.len() > MAX_HEAD_BYTES {
                return ReadRequest::Bad(431, "request head too large");
            }
            match self.fill(shared, !self.carry.is_empty()) {
                Ok(true) => {}
                Ok(false) if self.carry.is_empty() => return ReadRequest::Closed,
                Ok(false) | Err(_) => return ReadRequest::Bad(400, "truncated request head"),
            }
        };

        let head = match std::str::from_utf8(&self.carry[..head_end]) {
            Ok(h) => h.to_string(),
            Err(_) => return ReadRequest::Bad(400, "request head is not valid UTF-8"),
        };
        self.carry.drain(..head_end + 4);

        let request = match parse_head(&head) {
            Ok(request) => request,
            Err((status, message)) => return ReadRequest::Bad(status, message),
        };
        let content_length = match body_framing(&request) {
            Ok(BodyFraming::Length(n)) => n,
            Ok(BodyFraming::Chunked) => return self.read_chunked_body(shared, request),
            Err((status, message)) => return ReadRequest::Bad(status, message),
        };
        if content_length > shared.config.max_frame as usize {
            // Drain the declared body before the 413 goes out (see
            // `server::drain` for the RST rationale).
            crate::server::drain(
                &mut self.stream,
                content_length.saturating_sub(self.carry.len()) as u64,
            );
            self.carry.clear();
            return ReadRequest::Bad(413, "request body exceeds the frame size limit");
        }

        // Clients like curl hold the body back until the interim
        // response when they sent `Expect: 100-continue`; not answering
        // would stall every such request for the client's expect
        // timeout.
        if request.expects_continue() && self.carry.len() < content_length {
            let _ = self.stream.write_all(CONTINUE);
            let _ = self.stream.flush();
        }

        let mut request = request;
        while self.carry.len() < content_length {
            match self.fill(shared, true) {
                Ok(true) => {}
                Ok(false) | Err(_) => return ReadRequest::Bad(400, "truncated request body"),
            }
        }
        request.body = self.carry.drain(..content_length).collect();
        ReadRequest::Ok(request)
    }

    /// Reads a `Transfer-Encoding: chunked` body through the shared
    /// incremental decoder (the same one the reactor state machine
    /// uses, keeping error responses byte-identical across models).
    fn read_chunked_body(&mut self, shared: &Shared, mut request: Request) -> ReadRequest {
        // Chunked senders with `Expect: 100-continue` hold the body
        // back until the interim response; with no declared length
        // there is no "already buffered" shortcut, so always answer.
        if request.expects_continue() {
            let _ = self.stream.write_all(CONTINUE);
            let _ = self.stream.flush();
        }
        let mut decoder = ChunkedDecoder::new(shared.config.max_frame as usize);
        loop {
            match decoder.decode(&mut self.carry) {
                Ok(true) => break,
                Ok(false) => match self.fill(shared, true) {
                    Ok(true) => {}
                    Ok(false) | Err(_) => return ReadRequest::Bad(400, "truncated request body"),
                },
                // Terminal: the stream position is indeterminate (no
                // way to drain "the rest"), so the connection closes
                // right after the error response.
                Err((status, message)) => {
                    self.carry.clear();
                    return ReadRequest::Bad(status, message);
                }
            }
        }
        request.body = decoder.into_body();
        ReadRequest::Ok(request)
    }
}

pub(crate) fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

/// Serialises one complete JSON response (head + body). The single
/// serialisation point for error paths in both connection models, so an
/// HTTP exchange is byte-identical whether a pool worker or the reactor
/// wrote it. Routed responses go through [`routed_bytes`], which
/// produces the same bytes for JSON non-`HEAD` exchanges.
pub(crate) fn response_bytes(status: u16, body: &str, keep_alive: bool) -> Vec<u8> {
    routed_bytes(
        &Routed {
            status,
            body: body.to_string(),
            content_type: "application/json",
            head_only: false,
            shutdown: false,
        },
        keep_alive,
    )
}

/// One routed response before serialisation. `head_only` (a `HEAD`
/// request) keeps the body for its `Content-Length` header but does not
/// put it on the wire.
pub(crate) struct Routed {
    pub(crate) status: u16,
    pub(crate) body: String,
    pub(crate) content_type: &'static str,
    pub(crate) head_only: bool,
    pub(crate) shutdown: bool,
}

impl Routed {
    fn json(status: u16, body: String, shutdown: bool) -> Routed {
        Routed {
            status,
            body,
            content_type: "application/json",
            head_only: false,
            shutdown,
        }
    }
}

/// Serialises a routed response. The shared serialisation point for
/// both connection models (byte-identity across pool and reactor).
pub(crate) fn routed_bytes(routed: &Routed, keep_alive: bool) -> Vec<u8> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        routed.status,
        reason(routed.status),
        routed.content_type,
        routed.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    let mut bytes = head.into_bytes();
    if !routed.head_only {
        bytes.extend_from_slice(routed.body.as_bytes());
    }
    bytes
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    stream.write_all(&response_bytes(status, body, keep_alive))?;
    stream.flush()
}

pub(crate) fn error_body(message: &str) -> String {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::str(message))]).to_string()
}

/// Splits a request target into path and decoded `(key, value)` query
/// parameters.
fn split_target(target: &str) -> (&str, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let params = query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();
    (path, params)
}

/// Minimal percent-decoding (`%XX` and `+` → space); invalid escapes are
/// kept verbatim.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex_val(bytes.get(i + 1)), hex_val(bytes.get(i + 2))) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: Option<&u8>) -> Option<u8> {
    match b {
        Some(b @ b'0'..=b'9') => Some(b - b'0'),
        Some(b @ b'a'..=b'f') => Some(b - b'a' + 10),
        Some(b @ b'A'..=b'F') => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Routes one request.
pub(crate) fn route(request: &Request, shared: &Shared) -> Routed {
    let (path, params) = split_target(&request.target);
    let mut routed = match (request.method.as_str(), path) {
        ("GET" | "HEAD", "/healthz") => {
            let response = shared.dispatcher.dispatch_line("{\"op\":\"health\"}");
            // Read-only degraded mode answers 503 so load balancers and
            // probes fail writes over, while the JSON body still carries
            // the root cause and recovery progress.
            let degraded = response.get("status") == Some(&Json::str("degraded"));
            Routed::json(
                if degraded { 503 } else { 200 },
                response.to_string(),
                false,
            )
        }
        ("GET" | "HEAD", "/stats") => {
            let op = match params.iter().find(|(k, _)| k == "dataset") {
                Some((_, name)) => Json::obj([
                    ("op", Json::str("stats")),
                    ("dataset", Json::str(name.clone())),
                ]),
                None => Json::obj([("op", Json::str("list"))]),
            };
            let response = shared.dispatcher.dispatch(&op);
            let ok = response.get("ok") == Some(&Json::Bool(true));
            Routed::json(if ok { 200 } else { 400 }, response.to_string(), false)
        }
        // Served without dispatching: a scrape must not perturb the
        // request counters it reports.
        ("GET" | "HEAD", "/metrics") => Routed {
            status: 200,
            body: shared.dispatcher.metrics_text(),
            content_type: "text/plain; version=0.0.4",
            head_only: false,
            shutdown: false,
        },
        // The rest of the introspection plane, also served without
        // dispatching: retained traces, deep memory accounting and the
        // live connection table.
        ("GET" | "HEAD", "/debug/traces") => {
            let op = params
                .iter()
                .find(|(k, _)| k == "op")
                .map(|(_, v)| v.as_str())
                .filter(|v| !v.is_empty());
            let slowest = params
                .iter()
                .find(|(k, _)| k == "slowest")
                .is_some_and(|(_, v)| v != "0" && v != "false");
            let id = params
                .iter()
                .find(|(k, _)| k == "id")
                .and_then(|(_, v)| v.parse::<u64>().ok());
            let response = shared.dispatcher.debug_traces_json(op, slowest, id);
            let ok = response.get("ok") == Some(&Json::Bool(true));
            Routed::json(if ok { 200 } else { 400 }, response.to_string(), false)
        }
        ("GET" | "HEAD", "/debug/memory") => Routed::json(
            200,
            shared.dispatcher.debug_memory_json().to_string(),
            false,
        ),
        ("GET" | "HEAD", "/debug/conns") => {
            Routed::json(200, crate::server::conns_json(shared).to_string(), false)
        }
        ("POST", path) => 'post: {
            let Ok(body) = std::str::from_utf8(&request.body) else {
                break 'post Routed::json(
                    400,
                    error_body("request body is not valid UTF-8"),
                    false,
                );
            };
            let (response, shutdown) = match implied_op(path) {
                None if path == "/" => process_line(body, shared),
                None => {
                    break 'post Routed::json(
                        404,
                        error_body(&format!("unknown path {path:?}")),
                        false,
                    )
                }
                Some(op) => match inject_op(body, op) {
                    Ok(request) => process_request(&request, shared),
                    Err(message) => break 'post Routed::json(400, error_body(&message), false),
                },
            };
            let ok = response.get("ok") == Some(&Json::Bool(true));
            // Mutations rejected by read-only degraded mode are a
            // server-side condition, not a bad request: 503, so clients
            // and proxies know to retry after recovery.
            let degraded = !ok && response.get("error") == Some(&Json::str("degraded"));
            let status = if ok {
                200
            } else if degraded {
                503
            } else {
                400
            };
            Routed::json(status, response.to_string(), shutdown)
        }
        ("GET" | "HEAD", path) => {
            Routed::json(404, error_body(&format!("unknown path {path:?}")), false)
        }
        (method, _) => Routed::json(
            405,
            error_body(&format!("method {method:?} is not supported")),
            false,
        ),
    };
    routed.head_only = request.method == "HEAD";
    routed
}

/// The protocol op implied by a `POST /<op>` path, if any.
fn implied_op(path: &str) -> Option<&str> {
    match path.strip_prefix('/') {
        Some(
            op @ ("register" | "query" | "estimate_multi" | "append_rows" | "refresh" | "stats"
            | "list" | "health" | "drop" | "shutdown" | "server_stats" | "server_debug"),
        ) => Some(op),
        _ => None,
    }
}

/// Ensures the body's `"op"` matches the path-implied one, injecting it
/// when absent. Returns the parsed request object to dispatch.
fn inject_op(body: &str, op: &str) -> Result<Json, String> {
    // An empty body is allowed for body-less ops (`GET`-like POSTs).
    let parsed = if body.trim().is_empty() {
        Json::Obj(Vec::new())
    } else {
        match Json::parse(body) {
            Ok(v) => v,
            Err(e) => return Err(format!("invalid JSON: {e}")),
        }
    };
    let Json::Obj(mut members) = parsed else {
        return Err("request body must be a JSON object".to_string());
    };
    match members
        .iter()
        .find(|(k, _)| k == "op")
        .map(|(_, v)| v.clone())
    {
        Some(existing) => {
            if existing.as_str() != Some(op) {
                return Err(format!(
                    "body op {existing} does not match the path-implied op {op:?}"
                ));
            }
        }
        None => members.insert(0, ("op".to_string(), Json::str(op))),
    }
    Ok(Json::Obj(members))
}

/// Serves one HTTP connection until close/error/shutdown. `first4` is
/// the sniffed method prefix, pushed back onto the buffer.
pub(crate) fn serve_connection(
    stream: TcpStream,
    first4: [u8; 4],
    shared: &Shared,
    track: &ConnTrack,
) {
    let mut conn = Conn {
        stream,
        carry: first4.to_vec(),
        track,
    };
    loop {
        track.set_state(ConnState::Idle);
        match conn.read_request(shared) {
            ReadRequest::Closed => return,
            ReadRequest::Bad(status, message) => {
                let _ = write_response(&mut conn.stream, status, &error_body(message), false);
                return;
            }
            ReadRequest::Ok(request) => {
                track.inc_requests();
                track.set_state(ConnState::Dispatching);
                let routed = route(&request, shared);
                let keep_alive =
                    request.keep_alive() && !routed.shutdown && !shared.shutting_down();
                track.set_state(ConnState::Writing);
                let bytes = routed_bytes(&routed, keep_alive);
                let write = conn
                    .stream
                    .write_all(&bytes)
                    .and_then(|()| conn.stream.flush());
                track.add_out(bytes.len() as u64);
                if write.is_err() || !keep_alive {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_splitting_and_percent_decoding() {
        let (path, params) = split_target("/stats?dataset=my%20set&x=a+b&flag");
        assert_eq!(path, "/stats");
        assert_eq!(
            params,
            vec![
                ("dataset".to_string(), "my set".to_string()),
                ("x".to_string(), "a b".to_string()),
                ("flag".to_string(), String::new()),
            ]
        );
        assert_eq!(percent_decode("100%25"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz"); // invalid escape kept
        assert_eq!(percent_decode("trailing%2"), "trailing%2");
    }

    #[test]
    fn op_injection_rules() {
        assert_eq!(
            inject_op("{\"dataset\":\"d\"}", "stats")
                .unwrap()
                .to_string(),
            "{\"op\":\"stats\",\"dataset\":\"d\"}"
        );
        assert_eq!(
            inject_op("{\"op\":\"stats\",\"dataset\":\"d\"}", "stats")
                .unwrap()
                .to_string(),
            "{\"op\":\"stats\",\"dataset\":\"d\"}"
        );
        assert_eq!(
            inject_op("", "list").unwrap().to_string(),
            "{\"op\":\"list\"}"
        );
        assert!(inject_op("{\"op\":\"drop\"}", "stats").is_err());
        assert!(inject_op("[1,2]", "stats").is_err());
        assert!(inject_op("{broken", "stats").is_err());
    }

    /// Feeds `wire` to a decoder in `step`-byte slices, asserting the
    /// decoded body.
    fn decode_in_steps(
        wire: &[u8],
        step: usize,
        max: usize,
    ) -> Result<Vec<u8>, (u16, &'static str)> {
        let mut decoder = ChunkedDecoder::new(max);
        let mut buf = Vec::new();
        for piece in wire.chunks(step) {
            buf.extend_from_slice(piece);
            if decoder.decode(&mut buf)? {
                assert!(buf.is_empty(), "decoder left bytes after completion");
                return Ok(decoder.into_body());
            }
        }
        panic!("decoder never completed on {wire:?}");
    }

    #[test]
    fn chunked_decoder_handles_incremental_feeds() {
        let wire = b"4\r\nWiki\r\n5\r\npedia\r\nE\r\n in\r\n\r\nchunks.\r\n0\r\n\r\n";
        // Whole-buffer and every pathological split down to 1 byte.
        for step in [wire.len(), 7, 3, 2, 1] {
            assert_eq!(
                decode_in_steps(wire, step, 1 << 20).unwrap(),
                b"Wikipedia in\r\n\r\nchunks.",
                "step {step}"
            );
        }
    }

    #[test]
    fn chunked_decoder_ignores_extensions_and_tolerates_trailers() {
        let wire = b"5;ext=\"a;b\"\r\nhello\r\n0;last\r\nTrailer-One: x\r\nTrailer-Two: y\r\n\r\n";
        for step in [wire.len(), 1] {
            assert_eq!(decode_in_steps(wire, step, 1 << 20).unwrap(), b"hello");
        }
        // Uppercase hex and a sole-chunked TE header survive trimming.
        assert_eq!(
            decode_in_steps(b"A\r\n0123456789\r\n0\r\n\r\n", 1, 64)
                .unwrap()
                .len(),
            10
        );
    }

    #[test]
    fn chunked_decoder_leaves_pipelined_bytes_alone() {
        let mut decoder = ChunkedDecoder::new(64);
        let mut buf = b"3\r\nabc\r\n0\r\n\r\nGET /next".to_vec();
        assert!(decoder.decode(&mut buf).unwrap());
        assert_eq!(decoder.into_body(), b"abc");
        assert_eq!(buf, b"GET /next");
    }

    #[test]
    fn chunked_decoder_rejects_oversize_and_garbage() {
        // A chunk whose declared size alone busts the cap fails fast,
        // before any of its data arrives.
        let mut decoder = ChunkedDecoder::new(8);
        let mut buf = b"FF\r\n".to_vec();
        assert_eq!(
            decoder.decode(&mut buf).unwrap_err(),
            (413, "request body exceeds the frame size limit")
        );
        // Accumulation across chunks is capped too.
        let mut decoder = ChunkedDecoder::new(8);
        let mut buf = b"6\r\nsixsix\r\n6\r\nsixsix\r\n0\r\n\r\n".to_vec();
        assert_eq!(decoder.decode(&mut buf).unwrap_err().0, 413);
        // Non-hex sizes, missing CRLF after data, and runaway size
        // lines are 400s.
        let mut decoder = ChunkedDecoder::new(64);
        assert_eq!(
            decoder.decode(&mut b"zz\r\n".to_vec()).unwrap_err(),
            (400, "invalid chunk size")
        );
        let mut decoder = ChunkedDecoder::new(64);
        assert_eq!(
            decoder.decode(&mut b"3\r\nabcXY".to_vec()).unwrap_err(),
            (400, "chunk data is not CRLF-terminated")
        );
        let mut decoder = ChunkedDecoder::new(64);
        let mut runaway = vec![b'1'; MAX_CHUNK_LINE + 2];
        assert_eq!(
            decoder.decode(&mut runaway).unwrap_err(),
            (400, "chunk size line too long")
        );
    }

    #[test]
    fn chunked_decoder_caps_trailers() {
        let mut decoder = ChunkedDecoder::new(64);
        let mut buf = b"0\r\n".to_vec();
        for _ in 0..MAX_HEAD_BYTES / 8 + 8 {
            buf.extend_from_slice(b"T: vvv\r\n");
        }
        assert_eq!(
            decoder.decode(&mut buf).unwrap_err(),
            (431, "trailers too large")
        );
    }

    #[test]
    fn body_framing_recognises_chunked_and_rejects_others() {
        let framed = |headers: &[(&str, &str)]| {
            body_framing(&Request {
                method: "POST".into(),
                target: "/".into(),
                version: "HTTP/1.1".into(),
                headers: headers
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                body: Vec::new(),
            })
        };
        assert_eq!(framed(&[]), Ok(BodyFraming::Length(0)));
        assert_eq!(
            framed(&[("content-length", "12")]),
            Ok(BodyFraming::Length(12))
        );
        assert_eq!(
            framed(&[("transfer-encoding", "chunked")]),
            Ok(BodyFraming::Chunked)
        );
        assert_eq!(
            framed(&[("transfer-encoding", " Chunked ")]),
            Ok(BodyFraming::Chunked)
        );
        assert_eq!(
            framed(&[("transfer-encoding", "gzip, chunked")]),
            Err((501, "transfer-encoding is not supported"))
        );
        assert_eq!(
            framed(&[("content-length", "nope")]),
            Err((400, "invalid Content-Length"))
        );
    }

    #[test]
    fn implied_ops_cover_the_protocol() {
        for op in [
            "register",
            "query",
            "estimate_multi",
            "append_rows",
            "refresh",
            "stats",
            "list",
            "health",
            "drop",
            "shutdown",
            "server_stats",
            "server_debug",
        ] {
            assert_eq!(implied_op(&format!("/{op}")), Some(op));
        }
        assert_eq!(implied_op("/"), None);
        assert_eq!(implied_op("/nope"), None);
    }
}
