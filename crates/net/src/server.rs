//! The TCP listener: accepts connections, sniffs the wire protocol and
//! serves each connection on a [`ThreadPool`] worker.
//!
//! One socket serves both protocols. The first four bytes of a
//! connection are either an ASCII HTTP method prefix (`"GET "`,
//! `"POST"`, …) — in which case the connection is handed to the
//! [`crate::http`] adapter — or the big-endian length of the first
//! frame. The two cannot collide because frame lengths are capped at
//! [`MAX_FRAME_CEILING`], far below the
//! smallest method-prefix value.
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] (or a remote `{"op":"shutdown"}` when
//! [`ServerConfig::allow_remote_shutdown`] is set) flips a shared flag.
//! The acceptor runs the listener in non-blocking mode with a short
//! poll sleep, so it observes the flag within ~10 ms regardless of bind
//! address or host firewall rules (no self-connection tricks that can
//! silently fail). The pool then drains already-accepted connections,
//! and connection handlers notice the flag at their next request
//! boundary or read-timeout tick — so total shutdown latency is bounded
//! by [`ServerConfig::read_timeout`]. With `read_timeout: None`,
//! blocking reads cannot observe the flag: shutdown then waits until
//! every idle connection is closed by its client.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use pclabel_engine::json::Json;
use pclabel_engine::serve::Dispatcher;

use crate::conntrack::{ConnState, ConnTable, ConnTrack};
use crate::frame::{
    read_frame_body, write_frame, FrameError, DEFAULT_MAX_FRAME, MAX_FRAME_CEILING,
};
use crate::http;
use crate::metrics::NetMetrics;
use crate::pool::{QueueDepthProbe, ThreadPool};

/// How connections map onto threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionModel {
    /// One pool worker per *connection* for its whole lifetime. Simple
    /// and portable, but `workers` idle keep-alive clients starve every
    /// later client.
    Pool,
    /// One reactor thread owns every connection as a non-blocking state
    /// machine (epoll on Linux, `poll(2)` on other Unixes); pool workers
    /// are held per *request*, so idle connections cost nothing. Unix
    /// only — on other targets this falls back to [`Pool`].
    ///
    /// [`Pool`]: ConnectionModel::Pool
    Reactor,
}

impl ConnectionModel {
    /// The default `pclabel-netd` ships with: the reactor wherever the
    /// readiness syscalls exist (Unix; epoll on Linux), the portable
    /// thread-pool elsewhere.
    pub fn platform_default() -> ConnectionModel {
        if cfg!(unix) {
            ConnectionModel::Reactor
        } else {
            ConnectionModel::Pool
        }
    }
}

impl std::str::FromStr for ConnectionModel {
    type Err = String;
    fn from_str(s: &str) -> Result<ConnectionModel, String> {
        match s {
            "pool" => Ok(ConnectionModel::Pool),
            "reactor" => Ok(ConnectionModel::Reactor),
            other => Err(format!("unknown connection model {other:?}")),
        }
    }
}

impl std::fmt::Display for ConnectionModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ConnectionModel::Pool => "pool",
            ConnectionModel::Reactor => "reactor",
        })
    }
}

/// Tuning for [`NetServer::spawn`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Connection model. The library default stays [`ConnectionModel::Pool`]
    /// for embedders; `pclabel-netd` defaults to
    /// [`ConnectionModel::platform_default`].
    pub model: ConnectionModel,
    /// Worker threads serving connections (pool model: each persistent
    /// connection occupies one worker while it lives; reactor model:
    /// each *request* occupies one worker while it dispatches).
    pub workers: usize,
    /// Accepted connections that may wait for a free worker; beyond
    /// this, the acceptor itself blocks (backpressure). In the reactor
    /// model this bounds queued *requests*; excess requests park in the
    /// reactor until a worker frees up (see
    /// [`ServerConfig::max_parked`]).
    pub queue_capacity: usize,
    /// Reactor model only: cap on requests parked in the reactor when
    /// the pool queue is full. A request arriving with the pool queue
    /// full *and* the parking lot at this cap is answered immediately
    /// with HTTP `429 Too Many Requests` / a framed
    /// `{"ok":false,"error":"overloaded"}` instead of growing the queue
    /// without bound — worst-case dispatch memory stays
    /// `queue_capacity + max_parked` requests. `0` disables parking
    /// entirely (every queue-full request is refused).
    pub max_parked: usize,
    /// Maximum request-frame payload size in bytes (clamped to
    /// [`MAX_FRAME_CEILING`]); also caps HTTP request bodies.
    pub max_frame: u32,
    /// Per-connection socket read timeout. Pool model: doubles as the
    /// shutdown poll interval for idle connections. Reactor model: the
    /// deadline for a connection stalled *mid-request* (a wedged peer);
    /// `None` disables the deadline.
    pub read_timeout: Option<Duration>,
    /// Per-connection socket write timeout (reactor model: deadline for
    /// a response write that stops making progress).
    pub write_timeout: Option<Duration>,
    /// Reactor model only: connections idle *between* requests longer
    /// than this are closed. `None` (the default, matching the pool
    /// model) lets idle connections live until the client closes them
    /// or the connection cap evicts them.
    pub idle_timeout: Option<Duration>,
    /// Reactor model only: maximum simultaneous connections. At the
    /// cap, the least-recently-active idle connection is evicted to
    /// admit a newcomer; if every connection is mid-request the
    /// newcomer is refused.
    pub max_connections: usize,
    /// Reactor model only: force the portable `poll(2)` backend even
    /// where epoll is available (diagnostics; lets tests exercise the
    /// fallback on Linux). Also disables the `SO_REUSEPORT` listener
    /// group, so multi-reactor runs exercise the fd-handoff path.
    pub force_poll_backend: bool,
    /// Reactor model only: number of event loops. Each loop owns a
    /// private connection table, deadline bookkeeping and completion
    /// queue. Where the platform allows it (Linux, epoll backend) every
    /// loop accepts from its own `SO_REUSEPORT` listener and the kernel
    /// balances accepts; elsewhere loop 0 accepts and hands sockets to
    /// its peers round-robin. `0` is treated as 1. All loops share one
    /// dispatch [`ThreadPool`] (`workers`/`queue_capacity` stay
    /// process-wide).
    pub reactors: usize,
    /// Reactor model only: per-connection cap on queued unsent response
    /// bytes. At or above the cap the owning loop stops *reading* from
    /// that connection (its peer is not draining responses) until the
    /// queue sinks below the cap again — so per-connection memory is
    /// bounded by the watermark plus one read chunk instead of growing
    /// with response volume. `0` is treated as 1.
    pub write_watermark: usize,
    /// Honour `{"op":"shutdown"}` from clients (off by default; meant
    /// for tests and supervised smoke runs).
    pub allow_remote_shutdown: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            model: ConnectionModel::Pool,
            workers: 4,
            queue_capacity: 64,
            max_parked: 256,
            max_frame: DEFAULT_MAX_FRAME,
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            idle_timeout: None,
            max_connections: 1024,
            force_poll_backend: false,
            reactors: 1,
            write_watermark: 256 * 1024,
            allow_remote_shutdown: false,
        }
    }
}

/// State shared between the acceptor, the workers and the handle.
pub(crate) struct Shared {
    pub(crate) dispatcher: Arc<Dispatcher>,
    pub(crate) config: ServerConfig,
    /// Transport-level gauges/counters, registered in the dispatcher's
    /// telemetry registry so both connection models report identically.
    pub(crate) metrics: NetMetrics,
    /// Live connection table feeding `/debug/conns` and the
    /// `server_debug` op; both connection models register here.
    pub(crate) conns: ConnTable,
    /// Queue-depth probe onto the serving pool, set once at spawn (the
    /// pool itself moves into the acceptor/reactor thread).
    pool_depth: OnceLock<QueueDepthProbe>,
    local_addr: SocketAddr,
    shutdown: AtomicBool,
    /// One waker per reactor loop, so `trigger_shutdown` can interrupt
    /// every blocked poll immediately (the pool acceptor just polls the
    /// flag).
    #[cfg(unix)]
    wakers: std::sync::Mutex<Vec<Arc<crate::sys::Waker>>>,
}

impl Shared {
    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flips the shutdown flag; the polling acceptor notices it within
    /// one poll interval, and every reactor loop is woken out of its
    /// poll.
    pub(crate) fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        #[cfg(unix)]
        for waker in self.wakers.lock().expect("wakers").iter() {
            waker.wake();
        }
    }

    /// Registers one reactor loop's waker (at spawn, before the loops
    /// start).
    #[cfg(unix)]
    pub(crate) fn add_waker(&self, waker: Arc<crate::sys::Waker>) {
        self.wakers.lock().expect("wakers").push(waker);
    }

    /// Registers the serving pool's queue-depth probe (at most once, at
    /// spawn).
    pub(crate) fn set_pool_depth(&self, probe: QueueDepthProbe) {
        let _ = self.pool_depth.set(probe);
    }
}

/// How often the acceptor polls for new connections and the shutdown
/// flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// The network front end (namespace for [`NetServer::spawn`]).
pub struct NetServer;

impl NetServer {
    /// Binds `config.addr`, spawns the acceptor thread and worker pool,
    /// and returns a handle. All connections dispatch through the shared
    /// `dispatcher`.
    pub fn spawn(dispatcher: Arc<Dispatcher>, config: ServerConfig) -> io::Result<ServerHandle> {
        let mut config = config;
        config.max_frame = config.max_frame.min(MAX_FRAME_CEILING);
        let mut listeners: Vec<TcpListener> = Vec::new();
        #[cfg(unix)]
        if config.model == ConnectionModel::Reactor
            && config.reactors > 1
            && !config.force_poll_backend
        {
            // Multi-reactor on the epoll backend: try an `SO_REUSEPORT`
            // group — one listener per loop, accepts balanced by the
            // kernel. Any refusal (non-Linux, odd address, kernel
            // policy) falls back to one listener that loop 0 accepts on
            // and shares via fd handoff, so `--reactors N` always works.
            if let Ok(group) = bind_reuseport_group(&config.addr, config.reactors) {
                listeners = group;
            }
        }
        if listeners.is_empty() {
            listeners.push(TcpListener::bind(&config.addr)?);
        }
        // Non-blocking accept + wakers/short poll: shutdown is observed
        // promptly without relying on a wake connection that a firewall
        // or odd bind address could silently swallow.
        for listener in &listeners {
            listener.set_nonblocking(true)?;
        }
        let local_addr = listeners[0].local_addr()?;
        let metrics = NetMetrics::register(dispatcher.telemetry().registry());
        let shared = Arc::new(Shared {
            dispatcher,
            config,
            metrics,
            conns: ConnTable::default(),
            pool_depth: OnceLock::new(),
            local_addr,
            shutdown: AtomicBool::new(false),
            #[cfg(unix)]
            wakers: std::sync::Mutex::new(Vec::new()),
        });

        if shared.config.model == ConnectionModel::Reactor {
            #[cfg(unix)]
            {
                shared
                    .metrics
                    .reactors
                    .set(shared.config.reactors.max(1) as u64);
                let accept = crate::reactor::spawn(Arc::clone(&shared), listeners)?;
                return Ok(ServerHandle { shared, accept });
            }
            // Non-Unix: the readiness syscalls are unavailable; fall
            // through to the thread-pool model.
        }

        let listener = listeners
            .into_iter()
            .next()
            .expect("at least one listener was bound");

        let pool = ThreadPool::new(shared.config.workers, shared.config.queue_capacity);
        shared.set_pool_depth(pool.depth_probe());

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("pclabel-net-accept".to_string())
            .spawn(move || {
                loop {
                    if accept_shared.shutting_down() {
                        break;
                    }
                    let stream = match listener.accept() {
                        Ok((stream, _)) => stream,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL);
                            continue;
                        }
                        Err(_) => {
                            // Transient failure (EMFILE, aborted
                            // handshake, …): back off instead of
                            // spinning a core against a persistent one.
                            std::thread::sleep(ACCEPT_POLL);
                            continue;
                        }
                    };
                    // Handlers use blocking reads with SO_RCVTIMEO; undo
                    // the listener-inherited non-blocking mode.
                    if stream.set_nonblocking(false).is_err() {
                        continue;
                    }
                    accept_shared.metrics.accepts.inc();
                    let conn_shared = Arc::clone(&accept_shared);
                    if pool
                        .execute(move || {
                            conn_shared.metrics.open_connections.inc();
                            handle_connection(stream, &conn_shared);
                            conn_shared.metrics.open_connections.dec();
                        })
                        .is_err()
                    {
                        break;
                    }
                }
                pool.shutdown();
            })
            .expect("spawn acceptor");

        Ok(ServerHandle {
            shared,
            accept: vec![accept],
        })
    }
}

/// Owner handle for a running server.
pub struct ServerHandle {
    shared: Arc<Shared>,
    /// The acceptor thread (pool model) or every reactor loop thread.
    accept: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Initiates graceful shutdown and blocks until the acceptor and all
    /// workers have exited.
    pub fn shutdown(mut self) {
        self.shared.trigger_shutdown();
        self.join();
    }

    /// Blocks until the server stops on its own (remote shutdown op or
    /// acceptor failure). Used by `pclabel-netd`'s main thread.
    pub fn wait(mut self) {
        self.join();
    }

    fn join(&mut self) {
        for handle in self.accept.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.trigger_shutdown();
        self.join();
    }
}

/// Binds `n` `SO_REUSEPORT` listeners on the same address — one per
/// reactor loop, accepts balanced by the kernel. Port 0 resolves
/// through the first bind, and the remaining n−1 join its chosen port.
/// Errors (non-Linux, kernel refusal) make the caller fall back to a
/// single shared listener.
#[cfg(unix)]
fn bind_reuseport_group(addr: &str, n: usize) -> io::Result<Vec<TcpListener>> {
    use std::net::ToSocketAddrs;
    let first_addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
    })?;
    let first = crate::sys::bind_reuseport(&first_addr)?;
    let resolved = first.local_addr()?;
    let mut listeners = vec![first];
    for _ in 1..n {
        listeners.push(crate::sys::bind_reuseport(&resolved)?);
    }
    Ok(listeners)
}

/// Outcome of reading a fixed-size chunk with idle/shutdown awareness.
enum StartRead {
    /// All four bytes read.
    Data([u8; 4]),
    /// Clean EOF before any byte (client closed between requests).
    Eof,
    /// Shutdown observed, timeout mid-read, or I/O error — drop the
    /// connection without a response.
    Abort,
}

/// Reads the 4-byte request prologue (HTTP method prefix or frame
/// length). A read timeout with *zero* bytes consumed is an idle tick:
/// the connection stays alive unless the server is shutting down. A
/// timeout after partial data means a wedged peer: abort.
fn read_prologue(stream: &mut TcpStream, shared: &Shared) -> StartRead {
    let mut buf = [0u8; 4];
    let mut filled = 0usize;
    loop {
        if shared.shutting_down() && filled == 0 {
            return StartRead::Abort;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return StartRead::Eof,
            Ok(0) => return StartRead::Abort,
            Ok(n) => {
                filled += n;
                if filled == 4 {
                    return StartRead::Data(buf);
                }
            }
            Err(e)
                if filled == 0
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
            {
                continue; // idle between requests; loop re-checks shutdown
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return StartRead::Abort,
        }
    }
}

/// `true` if the connection's first four bytes look like an HTTP/1.x
/// request line. Shared with the reactor's protocol sniff.
pub(crate) fn is_http_prefix(bytes: &[u8; 4]) -> bool {
    matches!(
        bytes,
        b"GET " | b"POST" | b"PUT " | b"HEAD" | b"DELE" | b"OPTI" | b"PATC" | b"TRAC" | b"CONN"
    )
}

/// Serves one accepted connection: sniff, then speak the right protocol
/// until EOF, error or shutdown.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(shared.config.read_timeout);
    let _ = stream.set_write_timeout(shared.config.write_timeout);
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    let track = shared.conns.register(peer);
    let mut stream = stream;
    match read_prologue(&mut stream, shared) {
        StartRead::Eof | StartRead::Abort => {}
        StartRead::Data(first) => {
            track.add_in(4);
            if is_http_prefix(&first) {
                track.set_protocol(false);
                http::serve_connection(stream, first, shared, &track);
            } else {
                track.set_protocol(true);
                serve_framed(stream, u32::from_be_bytes(first), shared, &track);
            }
        }
    }
    shared.conns.deregister(track.id());
}

/// One raw request line: parse, then [`process_request`]. Returns the
/// response and whether a (permitted) shutdown was requested.
pub(crate) fn process_line(line: &str, shared: &Shared) -> (Json, bool) {
    let request = match Json::parse(line) {
        // Re-dispatching the unparsable line yields the dispatcher's own
        // error shape, keeping transports byte-identical with the
        // stdin/stdout loop.
        Err(_) => return (shared.dispatcher.dispatch_line(line), false),
        Ok(v) => v,
    };
    process_request(&request, shared)
}

/// One parsed request: the shared post-parse dispatch path for both
/// transports (the HTTP adapter calls it directly with the body it
/// already parsed). Returns the response and whether a (permitted)
/// shutdown was requested.
pub(crate) fn process_request(request: &Json, shared: &Shared) -> (Json, bool) {
    if request.get("op").and_then(Json::as_str) == Some("shutdown") {
        if shared.config.allow_remote_shutdown {
            shared.trigger_shutdown();
            return (
                Json::obj([("ok", Json::Bool(true)), ("op", Json::str("shutdown"))]),
                true,
            );
        }
        return (
            Json::obj([
                ("ok", Json::Bool(false)),
                (
                    "error",
                    Json::str("shutdown is not enabled (--allow-remote-shutdown)"),
                ),
                ("op", Json::str("shutdown")),
            ]),
            false,
        );
    }
    if request.get("op").and_then(Json::as_str) == Some("server_debug") {
        // Served at the transport layer, like `/metrics` over HTTP:
        // inspection must not perturb the request counters and traces
        // it reports, and only this layer can see the connection table.
        return (server_debug_response(request, shared), false);
    }
    (shared.dispatcher.dispatch(request), false)
}

/// The `server_debug` op response: the dispatcher's traces + memory +
/// uptime sections with the transport's live connection table appended.
pub(crate) fn server_debug_response(request: &Json, shared: &Shared) -> Json {
    let mut response = shared.dispatcher.server_debug_json(request);
    if response.get("ok") == Some(&Json::Bool(true)) {
        if let Json::Obj(members) = &mut response {
            members.push(("conns".to_string(), conns_json(shared)));
        }
    }
    response
}

/// The live connection-table snapshot served by `GET /debug/conns` and
/// embedded in `server_debug` responses. Reads only per-connection
/// atomics plus the table's admit/close mutex — never the event loop —
/// so a scrape cannot stall either connection model.
pub(crate) fn conns_json(shared: &Shared) -> Json {
    let rows = shared.conns.snapshot();
    let open = rows.len();
    let rows: Vec<Json> = rows
        .into_iter()
        .map(|row| {
            // The deadline that applies depends on what the connection
            // is doing; dispatching requests have no transport deadline.
            let deadline = match row.state {
                ConnState::Dispatching => None,
                ConnState::Writing => shared.config.write_timeout,
                ConnState::Reading => shared.config.read_timeout,
                ConnState::Idle | ConnState::Sniffing => shared.config.idle_timeout,
            };
            let slack = deadline.map(|d| d.as_secs_f64() - row.since_activity.as_secs_f64());
            Json::obj([
                ("id", Json::num(row.id as f64)),
                ("peer", Json::str(row.peer)),
                ("protocol", Json::str(row.protocol)),
                ("state", Json::str(row.state.name())),
                ("age_seconds", Json::num(row.age.as_secs_f64())),
                ("idle_seconds", Json::num(row.since_activity.as_secs_f64())),
                (
                    "deadline_slack_seconds",
                    slack.map(Json::num).unwrap_or(Json::Null),
                ),
                ("bytes_in", Json::num(row.bytes_in as f64)),
                ("bytes_out", Json::num(row.bytes_out as f64)),
                ("requests", Json::num(row.requests as f64)),
                ("buffered_bytes", Json::num(row.buffered as f64)),
            ])
        })
        .collect();
    Json::obj([
        ("ok", Json::Bool(true)),
        ("op", Json::str("server_debug")),
        ("section", Json::str("conns")),
        ("model", Json::str(shared.config.model.to_string())),
        (
            "reactors",
            Json::num(
                if cfg!(unix) && shared.config.model == ConnectionModel::Reactor {
                    shared.config.reactors.max(1) as f64
                } else {
                    0.0
                },
            ),
        ),
        ("open", Json::num(open as f64)),
        (
            "queue_depth",
            shared
                .pool_depth
                .get()
                .map(|p| Json::num(p.depth() as f64))
                .unwrap_or(Json::Null),
        ),
        ("conns", Json::Arr(rows)),
    ])
}

/// The framed-protocol error body for an oversized request frame. One
/// constructor for both connection models: the CI replay diff depends
/// on their responses staying byte-identical, so the wording and key
/// order must have a single home.
pub(crate) fn oversize_error_json(len: u32, max: u32) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::str(format!(
                "frame of {len} bytes exceeds maximum of {max} bytes"
            )),
        ),
    ])
}

/// The error body for a framed request payload that is not valid UTF-8
/// (same single-home rationale as [`oversize_error_json`]).
pub(crate) fn utf8_error_json() -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::str("request is not valid UTF-8")),
    ])
}

/// The error body for a request refused because the dispatch queue and
/// the reactor's parking lot are both full (`ServerConfig::max_parked`).
/// Served as a framed error or an HTTP 429; the connection stays usable —
/// overload is transient and the stream is still in sync.
pub(crate) fn overloaded_error_json() -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::str("overloaded")),
    ])
}

/// Reads and discards up to `remaining` bytes (bounded additionally by
/// the socket read timeout), so a rejected payload never sits unread in
/// the receive buffer when the connection closes — closing with unread
/// data would RST the connection and destroy the error response in
/// flight. Shared by the framed loop and the HTTP adapter's 413 path.
pub(crate) fn drain(stream: &mut TcpStream, mut remaining: u64) {
    let mut chunk = [0u8; 8192];
    while remaining > 0 {
        let want = chunk.len().min(remaining.min(u32::MAX as u64) as usize);
        match stream.read(&mut chunk[..want]) {
            Ok(0) => break,
            Ok(n) => remaining -= n as u64,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break, // timeout or hard error: give up draining
        }
    }
}

/// The length-prefixed protocol loop. `first_len` is the already-sniffed
/// length of the first frame.
fn serve_framed(mut stream: TcpStream, first_len: u32, shared: &Shared, track: &ConnTrack) {
    let max = shared.config.max_frame;
    let mut next_len = Some(first_len);
    loop {
        let len = match next_len.take() {
            Some(len) => len,
            None => {
                track.set_state(ConnState::Idle);
                match read_prologue(&mut stream, shared) {
                    StartRead::Data(header) => {
                        track.add_in(4);
                        u32::from_be_bytes(header)
                    }
                    StartRead::Eof | StartRead::Abort => return,
                }
            }
        };
        track.set_state(ConnState::Reading);
        let payload = match read_frame_body(&mut stream, len, max) {
            Ok(p) => p,
            Err(FrameError::TooLarge { len, max }) => {
                // The payload was never read, so the stream cannot be
                // re-synchronised: drain it (closing with unread data
                // would RST the connection and destroy the error frame
                // in flight), report, and close.
                drain(&mut stream, len as u64);
                let error = oversize_error_json(len, max);
                let _ = write_frame(&mut stream, error.to_string().as_bytes(), MAX_FRAME_CEILING);
                return;
            }
            Err(FrameError::Io(_)) => return,
        };
        track.add_in(payload.len() as u64);
        track.inc_requests();
        track.set_state(ConnState::Dispatching);
        let (response, shutdown) = match std::str::from_utf8(&payload) {
            Ok(line) => process_line(line, shared),
            Err(_) => (utf8_error_json(), false),
        };
        // Responses are always sent whole, even above the request cap:
        // the server never truncates its own output.
        track.set_state(ConnState::Writing);
        let body = response.to_string();
        if write_frame(&mut stream, body.as_bytes(), MAX_FRAME_CEILING).is_err() {
            return;
        }
        track.add_out(4 + body.len() as u64);
        if shutdown || shared.shutting_down() {
            return;
        }
    }
}
