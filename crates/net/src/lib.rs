//! # pclabel-net
//!
//! The std-only network front end for the `pclabel` serving engine.
//! Where `pclabel-engine` answers requests over stdin/stdout, this crate
//! mounts the *same* transport-agnostic
//! [`Dispatcher`](pclabel_engine::serve::Dispatcher) behind `std::net`:
//! one listening socket serves both wire protocols, detected from the
//! first four bytes of each connection:
//!
//! * **Length-prefixed TCP framing** ([`frame`]) — each request and
//!   response is a `u32` big-endian byte length followed by that many
//!   bytes of JSON. Persistent, pipelinable, minimal overhead; the
//!   [`client::NetClient`] speaks it.
//! * **HTTP/1.1** ([`http`]) — `POST /query`, `POST /register`,
//!   `GET /stats`, `GET /healthz` (and `POST /<op>` generally) with the
//!   same JSON bodies, `Content-Length` framing and keep-alive. Anything
//!   that speaks HTTP (e.g. `curl`) can hit the engine directly.
//!
//! The two protocols cannot collide: an HTTP connection starts with an
//! ASCII method (`"GET "` is `0x47455420` ≈ 1.19 GB as a big-endian
//! length) while frame lengths are capped far lower by
//! [`server::ServerConfig::max_frame`].
//!
//! Because every transport funnels into one dispatcher, `pclabel-serve`
//! (pipe) and `pclabel-netd` (network) produce byte-identical response
//! JSON for the same request stream — asserted by this crate's
//! integration tests.
//!
//! ## Connection models
//!
//! Two interchangeable connection models serve the same protocols with
//! byte-identical responses
//! ([`ServerConfig::model`](server::ServerConfig)):
//!
//! * **`pool`** — one worker thread per connection for its lifetime.
//!   Simple and portable, but `workers` idle keep-alive clients starve
//!   every later client.
//! * **`reactor`** (Unix; default for `pclabel-netd` there) — one
//!   event-loop thread owns every connection as a non-blocking state
//!   machine over `epoll` (Linux) or `poll(2)`; workers are held per
//!   *request*, so idle connections cost a file descriptor, not a
//!   thread. Adds per-connection idle deadlines and a connection cap
//!   with LRU-idle eviction.
//!
//! ## Pieces
//!
//! * [`frame`] — the length-prefixed wire format (read/write, size caps);
//! * [`pool`] — a fixed-size worker [`pool::ThreadPool`] fed by a bounded
//!   queue (accepting backpressure instead of unbounded memory);
//! * [`server`] — the TCP listener: protocol sniffing, per-connection
//!   read/write timeouts, graceful shutdown via a flag + wake connection;
//! * `reactor` + `sys` (Unix) — the event-driven connection model and
//!   its raw `epoll`/`poll(2)` syscall layer;
//! * [`http`] — the minimal HTTP/1.1 adapter;
//! * [`client`] — blocking framed-TCP and HTTP clients for tests,
//!   benchmarks and smoke scripts.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use pclabel_engine::prelude::*;
//! use pclabel_net::client::NetClient;
//! use pclabel_net::server::{NetServer, ServerConfig};
//! use pclabel_engine::json::Json;
//!
//! let server = NetServer::spawn(
//!     Arc::new(Dispatcher::with_config(EngineConfig::default())),
//!     ServerConfig::default(), // 127.0.0.1:0 — ephemeral loopback port
//! )
//! .unwrap();
//!
//! let mut client = NetClient::connect(server.local_addr()).unwrap();
//! let response = client
//!     .request_line(r#"{"op":"register","dataset":"census","generator":"figure2","bound":5}"#)
//!     .unwrap();
//! assert_eq!(Json::parse(&response).unwrap().get("ok"), Some(&Json::Bool(true)));
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub(crate) mod conntrack;
pub mod frame;
pub mod http;
pub(crate) mod metrics;
pub mod pool;
#[cfg(unix)]
pub(crate) mod reactor;
pub mod server;
#[cfg(unix)]
pub(crate) mod sys;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::client::{HttpClient, NetClient, RetryPolicy, RetryingClient};
    pub use crate::frame::{encode_frame, read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};
    pub use crate::pool::ThreadPool;
    pub use crate::server::{ConnectionModel, NetServer, ServerConfig, ServerHandle};
}
