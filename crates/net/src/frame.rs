//! The length-prefixed wire format: `u32` big-endian payload length,
//! then that many bytes of JSON.
//!
//! Both sides enforce a maximum frame size — a reader never allocates
//! more than `max` bytes on the say-so of an untrusted peer, and a
//! writer refuses to emit a frame the peer's default limit would reject.
//! The cap also keeps the format unambiguous with HTTP on a shared port:
//! every ASCII method prefix decodes to a length of ≥ ~1.14 GB
//! (`"DELE"` = `0x44454C45`), far above [`MAX_FRAME_CEILING`].

use std::fmt;
use std::io::{self, Read, Write};

/// Default maximum frame payload size (1 MiB).
pub const DEFAULT_MAX_FRAME: u32 = 1 << 20;

/// Hard ceiling for configurable frame limits (256 MiB). Keeps every
/// legal length prefix below the smallest ASCII HTTP-method prefix, so
/// protocol sniffing can never misclassify a frame.
pub const MAX_FRAME_CEILING: u32 = 1 << 28;

/// Framing failures.
#[derive(Debug)]
pub enum FrameError {
    /// An underlying I/O error (includes timeouts and mid-frame EOF).
    Io(io::Error),
    /// The peer declared (or the caller tried to send) a payload larger
    /// than the configured maximum.
    TooLarge {
        /// Declared payload length.
        len: u32,
        /// Configured maximum.
        max: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds maximum of {max} bytes")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Serialises one frame (length prefix + payload) into an owned buffer.
/// Used by the reactor, which queues whole responses for non-blocking
/// writes instead of writing to a stream.
pub fn encode_frame(payload: &[u8], max: u32) -> Result<Vec<u8>, FrameError> {
    let len =
        u32::try_from(payload.len()).map_err(|_| FrameError::TooLarge { len: u32::MAX, max })?;
    if len > max {
        return Err(FrameError::TooLarge { len, max });
    }
    let mut bytes = Vec::with_capacity(4 + payload.len());
    bytes.extend_from_slice(&len.to_be_bytes());
    bytes.extend_from_slice(payload);
    Ok(bytes)
}

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8], max: u32) -> Result<(), FrameError> {
    let len =
        u32::try_from(payload.len()).map_err(|_| FrameError::TooLarge { len: u32::MAX, max })?;
    if len > max {
        return Err(FrameError::TooLarge { len, max });
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF *between* frames;
/// EOF inside a frame is an [`FrameError::Io`] with
/// [`io::ErrorKind::UnexpectedEof`].
pub fn read_frame<R: Read>(r: &mut R, max: u32) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    read_frame_body(r, u32::from_be_bytes(header), max).map(Some)
}

/// Reads a frame's payload when the 4-byte length prefix has already
/// been consumed (the server's protocol sniffer reads it itself).
pub fn read_frame_body<R: Read>(r: &mut R, len: u32, max: u32) -> Result<Vec<u8>, FrameError> {
    if len > max {
        return Err(FrameError::TooLarge { len, max });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"{\"op\":\"list\"}", DEFAULT_MAX_FRAME).unwrap();
        write_frame(&mut wire, b"", DEFAULT_MAX_FRAME).unwrap();
        let mut r = wire.as_slice();
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().as_deref(),
            Some(b"{\"op\":\"list\"}".as_slice())
        );
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().as_deref(),
            Some(b"".as_slice())
        );
        assert!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().is_none());
    }

    #[test]
    fn length_prefix_is_big_endian() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abcde", DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(&wire[..4], &[0, 0, 0, 5]);
        assert_eq!(&wire[4..], b"abcde");
    }

    #[test]
    fn encode_matches_write() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"{\"op\":\"list\"}", DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(
            encode_frame(b"{\"op\":\"list\"}", DEFAULT_MAX_FRAME).unwrap(),
            wire
        );
        assert!(matches!(
            encode_frame(&[0u8; 100], 10),
            Err(FrameError::TooLarge { len: 100, max: 10 })
        ));
    }

    #[test]
    fn oversized_frames_rejected_both_ways() {
        let mut wire = Vec::new();
        assert!(matches!(
            write_frame(&mut wire, &[0u8; 100], 10),
            Err(FrameError::TooLarge { len: 100, max: 10 })
        ));
        // A peer declaring 1 GiB must be refused before allocation.
        let mut r: &[u8] = &[0x40, 0, 0, 0, b'x'];
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_FRAME),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn truncation_is_unexpected_eof() {
        // Header cut short.
        let mut r: &[u8] = &[0, 0];
        match read_frame(&mut r, DEFAULT_MAX_FRAME) {
            Err(FrameError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected EOF error, got {other:?}"),
        }
        // Payload cut short.
        let mut r: &[u8] = &[0, 0, 0, 9, b'a', b'b'];
        match read_frame(&mut r, DEFAULT_MAX_FRAME) {
            Err(FrameError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected EOF error, got {other:?}"),
        }
    }
}
