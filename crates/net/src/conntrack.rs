//! Live connection-state tracking for `/debug/conns`.
//!
//! Both connection models register every accepted connection in a
//! shared [`ConnTable`] and mirror its coarse state into the entry's
//! atomics. The table's mutex is touched only on admit/close and by a
//! snapshot; every per-byte and per-request update is a relaxed atomic
//! on an entry the updater already holds an `Arc` to. A `/debug/conns`
//! scrape therefore reads a consistent-enough picture of the fleet
//! without ever stalling the reactor's event loop or blocking a pool
//! worker mid-request.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Coarse connection state, mirrored by both connection models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnState {
    /// Accepted; the protocol sniff has not finished yet.
    Sniffing = 0,
    /// Between requests (keep-alive), nothing in flight.
    Idle = 1,
    /// Bytes of an unfinished request have arrived.
    Reading = 2,
    /// A request is being dispatched (occupying a pool worker).
    Dispatching = 3,
    /// A response is queued or mid-write back to the peer.
    Writing = 4,
}

impl ConnState {
    pub(crate) fn name(self) -> &'static str {
        match self {
            ConnState::Sniffing => "sniffing",
            ConnState::Idle => "idle",
            ConnState::Reading => "reading",
            ConnState::Dispatching => "dispatching",
            ConnState::Writing => "writing",
        }
    }

    fn from_u8(v: u8) -> ConnState {
        match v {
            1 => ConnState::Idle,
            2 => ConnState::Reading,
            3 => ConnState::Dispatching,
            4 => ConnState::Writing,
            _ => ConnState::Sniffing,
        }
    }
}

/// Sniffed wire protocol (0 = not yet known).
const PROTO_UNKNOWN: u8 = 0;
const PROTO_FRAMED: u8 = 1;
const PROTO_HTTP: u8 = 2;

/// One live connection's bookkeeping. Updates are relaxed atomics: the
/// snapshot is diagnostic, not transactional.
pub(crate) struct ConnTrack {
    id: u64,
    peer: String,
    created: Instant,
    protocol: AtomicU8,
    state: AtomicU8,
    /// Milliseconds from `created` to the last byte/request activity.
    last_activity_ms: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    requests: AtomicU64,
    /// Bytes currently buffered for this connection (unconsumed read
    /// bytes + queued unsent output). The reactor keeps this bounded by
    /// the write watermark plus one read chunk; `/debug/conns` exposes
    /// it so tests can assert streaming stays O(watermark), not O(body).
    buffered: AtomicU64,
}

impl ConnTrack {
    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    /// Records the protocol sniff (first request's prologue).
    pub(crate) fn set_protocol(&self, framed: bool) {
        let proto = if framed { PROTO_FRAMED } else { PROTO_HTTP };
        self.protocol.store(proto, Ordering::Relaxed);
    }

    pub(crate) fn set_state(&self, state: ConnState) {
        self.state.store(state as u8, Ordering::Relaxed);
    }

    fn touch(&self) {
        self.last_activity_ms
            .store(self.created.elapsed().as_millis() as u64, Ordering::Relaxed);
    }

    /// Adds received bytes and refreshes the activity stamp.
    pub(crate) fn add_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
        self.touch();
    }

    /// Adds sent bytes and refreshes the activity stamp.
    pub(crate) fn add_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
        self.touch();
    }

    /// Counts one complete request read off this connection.
    pub(crate) fn inc_requests(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.touch();
    }

    /// Records the bytes currently buffered for this connection.
    pub(crate) fn set_buffered(&self, n: u64) {
        self.buffered.store(n, Ordering::Relaxed);
    }
}

/// One row of a [`ConnTable::snapshot`].
pub(crate) struct ConnRow {
    pub(crate) id: u64,
    pub(crate) peer: String,
    pub(crate) protocol: &'static str,
    pub(crate) state: ConnState,
    pub(crate) age: Duration,
    /// Time since the last byte/request activity.
    pub(crate) since_activity: Duration,
    pub(crate) bytes_in: u64,
    pub(crate) bytes_out: u64,
    pub(crate) requests: u64,
    pub(crate) buffered: u64,
}

/// The process-wide table of live connections.
#[derive(Default)]
pub(crate) struct ConnTable {
    next_id: AtomicU64,
    conns: Mutex<HashMap<u64, Arc<ConnTrack>>>,
}

impl ConnTable {
    /// Admits a connection; the returned entry is the updater's handle
    /// and must be paired with [`ConnTable::deregister`] on close.
    pub(crate) fn register(&self, peer: String) -> Arc<ConnTrack> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let track = Arc::new(ConnTrack {
            id,
            peer,
            created: Instant::now(),
            protocol: AtomicU8::new(PROTO_UNKNOWN),
            state: AtomicU8::new(ConnState::Sniffing as u8),
            last_activity_ms: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            buffered: AtomicU64::new(0),
        });
        self.conns
            .lock()
            .expect("conn table")
            .insert(id, Arc::clone(&track));
        track
    }

    pub(crate) fn deregister(&self, id: u64) {
        self.conns.lock().expect("conn table").remove(&id);
    }

    /// A point-in-time dump of every live connection, oldest first.
    pub(crate) fn snapshot(&self) -> Vec<ConnRow> {
        let tracks: Vec<Arc<ConnTrack>> = self
            .conns
            .lock()
            .expect("conn table")
            .values()
            .cloned()
            .collect();
        let mut rows: Vec<ConnRow> = tracks
            .iter()
            .map(|t| {
                let age = t.created.elapsed();
                let last_ms = t.last_activity_ms.load(Ordering::Relaxed);
                ConnRow {
                    id: t.id,
                    peer: t.peer.clone(),
                    protocol: match t.protocol.load(Ordering::Relaxed) {
                        PROTO_FRAMED => "framed",
                        PROTO_HTTP => "http",
                        _ => "unknown",
                    },
                    state: ConnState::from_u8(t.state.load(Ordering::Relaxed)),
                    age,
                    since_activity: age.saturating_sub(Duration::from_millis(last_ms)),
                    bytes_in: t.bytes_in.load(Ordering::Relaxed),
                    bytes_out: t.bytes_out.load(Ordering::Relaxed),
                    requests: t.requests.load(Ordering::Relaxed),
                    buffered: t.buffered.load(Ordering::Relaxed),
                }
            })
            .collect();
        rows.sort_by_key(|r| r.id);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_update_snapshot_deregister() {
        let table = ConnTable::default();
        let a = table.register("127.0.0.1:1000".to_string());
        let b = table.register("127.0.0.1:2000".to_string());

        a.set_protocol(true);
        a.set_state(ConnState::Dispatching);
        a.add_in(17);
        a.add_out(40);
        a.inc_requests();
        a.set_buffered(9);
        b.set_protocol(false);

        let rows = table.snapshot();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].peer, "127.0.0.1:1000");
        assert_eq!(rows[0].protocol, "framed");
        assert_eq!(rows[0].state, ConnState::Dispatching);
        assert_eq!(rows[0].bytes_in, 17);
        assert_eq!(rows[0].bytes_out, 40);
        assert_eq!(rows[0].requests, 1);
        assert_eq!(rows[0].buffered, 9);
        assert_eq!(rows[1].protocol, "http");
        assert_eq!(rows[1].state, ConnState::Sniffing);

        table.deregister(a.id());
        let rows = table.snapshot();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].peer, "127.0.0.1:2000");
    }
}
