//! The event-driven connection model: one reactor thread owns every
//! connection as a non-blocking state machine and multiplexes them over
//! [`crate::sys::Poller`] (epoll on Linux, `poll(2)` elsewhere).
//!
//! ## Why
//!
//! The thread-pool model pins one worker per *connection*, so `workers`
//! idle keep-alive clients starve every later client even though the
//! server is doing no work. The reactor pins workers per *request*
//! instead: connections cost a file descriptor and a small buffer while
//! idle, and only occupy a pool worker for the duration of one dispatch.
//! N idle connections no longer block the N+1st client.
//!
//! ## Anatomy
//!
//! * [`Machine`] — the incremental protocol state machine: it consumes
//!   raw bytes (in whatever slices the socket delivers them) and emits
//!   complete framed or HTTP requests, reusing the exact parsing,
//!   routing and serialisation helpers of the blocking adapters so
//!   responses stay byte-identical between the two connection models.
//! * The reactor loop — accepts, reads, and writes without ever
//!   blocking; fully-read requests are handed to the shared
//!   [`ThreadPool`] (dispatch can be arbitrarily slow — it must not
//!   stall the loop), and finished responses come back through a
//!   completion queue plus a [`Waker`] pipe.
//! * Deadlines — each connection derives one deadline from its state
//!   (write-stalled → `write_timeout`, mid-request → `read_timeout`,
//!   idle → `idle_timeout`); the nearest deadline bounds the poll
//!   timeout and expired connections are aborted (or, for idle ones,
//!   quietly evicted).
//! * Connection cap — beyond
//!   [`ServerConfig::max_connections`](crate::server::ServerConfig), the
//!   least-recently-active *idle* connection is evicted to admit the
//!   newcomer; if every connection is mid-request, the newcomer is
//!   refused instead (bounded memory beats unbounded acceptance).
//! * Dispatch backpressure — when the pool's bounded queue is full,
//!   ready requests park in the reactor, but only up to
//!   [`ServerConfig::max_parked`](crate::server::ServerConfig): past the
//!   cap the request is answered immediately with HTTP `429` or a framed
//!   `{"ok":false,"error":"overloaded"}` and the connection stays open,
//!   so a worker stall bounds queued-request memory instead of growing a
//!   `VecDeque` without limit.
//! * Graceful shutdown — the acceptor deregisters, idle and mid-read
//!   connections close immediately, and in-flight dispatches drain:
//!   their responses are still written before the loop exits.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::conntrack::{ConnState, ConnTrack};
use crate::frame::encode_frame;
use crate::http::{self, find_subsequence};
use crate::pool::{Job, ThreadPool, TryExecuteError};
use crate::server::{
    is_http_prefix, overloaded_error_json, oversize_error_json, process_line, utf8_error_json,
    Shared,
};
use crate::sys::{Backend, Event, Interest, Poller, Waker};

// --- the protocol state machine --------------------------------------------

/// Which wire protocol a connection settled on (sniffed from its first
/// four bytes, exactly like the thread-pool model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Protocol {
    Framed,
    Http,
}

/// What a request was too large for; decides the error response shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Oversize {
    /// A framed payload above `max_frame`: framed error + close.
    Frame {
        /// Declared payload length.
        len: u32,
        /// Configured maximum.
        max: u32,
    },
    /// An HTTP body above `max_frame`: `413` + close.
    HttpBody,
}

enum MState {
    /// Waiting for the 4-byte prologue: a protocol sniff on the first
    /// one, a frame length on every later one.
    Prologue,
    /// Reading a framed payload of known length.
    FrameBody { len: usize },
    /// Accumulating an HTTP request head (until `\r\n\r\n`); `scanned`
    /// marks how far the terminator search has already looked.
    HttpHead { scanned: usize },
    /// Head parsed with `Expect: 100-continue` and an incomplete body:
    /// emit the interim response once, then read the body.
    HttpContinue {
        head: http::Request,
        content_length: usize,
    },
    /// Reading an HTTP body of known length.
    HttpBody {
        head: http::Request,
        content_length: usize,
    },
    /// Consuming an oversized payload so the error response is not
    /// destroyed by a connection reset (see `server::drain`).
    Drain { remaining: u64, then: Oversize },
    /// A complete request was emitted and is dispatching/writing;
    /// requests are strictly sequential per connection, so no further
    /// bytes are interpreted until [`Machine::resume`].
    Paused,
    /// Terminal: an error response is being written, then close.
    Closed,
}

/// What [`Machine::next`] produced.
pub(crate) enum Step {
    /// Buffered bytes are exhausted; read more from the socket.
    NeedMore,
    /// One complete framed request payload.
    FramedRequest(Vec<u8>),
    /// One complete HTTP request (head + body).
    HttpRequest(Box<http::Request>),
    /// Write `HTTP/1.1 100 Continue` now, keep reading the body.
    SendContinue,
    /// An oversized payload finished draining: write the matching error
    /// response and close.
    Oversized(Oversize),
    /// Malformed HTTP: write this error response and close.
    HttpError { status: u16, message: &'static str },
}

/// The incremental protocol state machine. Push bytes in whatever
/// slices the socket delivers them; pull [`Step`]s out. Pure — no I/O —
/// so partial-read behaviour is unit-testable without sockets.
pub(crate) struct Machine {
    max_frame: u32,
    buf: Vec<u8>,
    protocol: Option<Protocol>,
    state: MState,
}

impl Machine {
    pub(crate) fn new(max_frame: u32) -> Machine {
        Machine {
            max_frame,
            buf: Vec::new(),
            protocol: None,
            state: MState::Prologue,
        }
    }

    /// Appends newly-read socket bytes.
    pub(crate) fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// `true` while a request is partially read: a stalled peer should
    /// be aborted on `read_timeout`, not treated as idle.
    pub(crate) fn has_partial(&self) -> bool {
        match self.state {
            MState::FrameBody { .. }
            | MState::HttpContinue { .. }
            | MState::HttpBody { .. }
            | MState::Drain { .. } => true,
            MState::Prologue | MState::HttpHead { .. } => !self.buf.is_empty(),
            MState::Paused | MState::Closed => false,
        }
    }

    pub(crate) fn is_paused(&self) -> bool {
        matches!(self.state, MState::Paused)
    }

    /// Gives up on an in-progress drain (the peer stalled): returns the
    /// pending oversize error so the caller can still send it, exactly
    /// like the blocking model's timeout-bounded `drain()`.
    pub(crate) fn abandon_drain(&mut self) -> Option<Oversize> {
        if let MState::Drain { then, .. } = self.state {
            self.state = MState::Closed;
            return Some(then);
        }
        None
    }

    /// Re-arms the machine for the next request after a response was
    /// fully written (keep-alive).
    pub(crate) fn resume(&mut self) {
        debug_assert!(self.is_paused());
        self.state = match self.protocol {
            Some(Protocol::Http) => MState::HttpHead { scanned: 0 },
            _ => MState::Prologue,
        };
    }

    /// Advances as far as the buffered bytes allow and reports the next
    /// action.
    pub(crate) fn next(&mut self) -> Step {
        loop {
            match std::mem::replace(&mut self.state, MState::Closed) {
                MState::Prologue => {
                    if self.buf.len() < 4 {
                        self.state = MState::Prologue;
                        return Step::NeedMore;
                    }
                    let first: [u8; 4] = self.buf[..4].try_into().expect("4 bytes");
                    if self.protocol.is_none() {
                        if is_http_prefix(&first) {
                            self.protocol = Some(Protocol::Http);
                            self.state = MState::HttpHead { scanned: 0 };
                            continue;
                        }
                        self.protocol = Some(Protocol::Framed);
                    }
                    self.buf.drain(..4);
                    let len = u32::from_be_bytes(first);
                    if len > self.max_frame {
                        self.state = MState::Drain {
                            remaining: u64::from(len),
                            then: Oversize::Frame {
                                len,
                                max: self.max_frame,
                            },
                        };
                        continue;
                    }
                    self.state = MState::FrameBody { len: len as usize };
                }
                MState::FrameBody { len } => {
                    if self.buf.len() < len {
                        self.state = MState::FrameBody { len };
                        return Step::NeedMore;
                    }
                    let payload: Vec<u8> = self.buf.drain(..len).collect();
                    self.state = MState::Paused;
                    return Step::FramedRequest(payload);
                }
                MState::HttpHead { scanned } => {
                    // Resume the terminator search where the last pass
                    // stopped (rewound 3 bytes in case `\r\n\r\n`
                    // straddles the old buffer end); rescanning from 0
                    // would make byte-at-a-time heads O(n²) on the one
                    // thread every connection shares.
                    let start = scanned.saturating_sub(3);
                    let Some(pos) =
                        find_subsequence(&self.buf[start..], b"\r\n\r\n").map(|p| p + start)
                    else {
                        if self.buf.len() > http::MAX_HEAD_BYTES {
                            return Step::HttpError {
                                status: 431,
                                message: "request head too large",
                            };
                        }
                        self.state = MState::HttpHead {
                            scanned: self.buf.len(),
                        };
                        return Step::NeedMore;
                    };
                    let Ok(head) = std::str::from_utf8(&self.buf[..pos]) else {
                        return Step::HttpError {
                            status: 400,
                            message: "request head is not valid UTF-8",
                        };
                    };
                    // Parse from the borrowed bytes first — `parse_head`
                    // returns an owned Request, so the head never needs
                    // its own copy — then drop it from the buffer.
                    let head = match http::parse_head(head) {
                        Ok(head) => head,
                        Err((status, message)) => return Step::HttpError { status, message },
                    };
                    self.buf.drain(..pos + 4);
                    let content_length = match http::body_length(&head) {
                        Ok(n) => n,
                        Err((status, message)) => return Step::HttpError { status, message },
                    };
                    if content_length > self.max_frame as usize {
                        let remaining = content_length.saturating_sub(self.buf.len()) as u64;
                        self.buf.clear();
                        self.state = MState::Drain {
                            remaining,
                            then: Oversize::HttpBody,
                        };
                        continue;
                    }
                    if head.expects_continue() && self.buf.len() < content_length {
                        self.state = MState::HttpContinue {
                            head,
                            content_length,
                        };
                        return Step::SendContinue;
                    }
                    self.state = MState::HttpBody {
                        head,
                        content_length,
                    };
                }
                MState::HttpContinue {
                    head,
                    content_length,
                } => {
                    // The interim response was queued by the caller.
                    self.state = MState::HttpBody {
                        head,
                        content_length,
                    };
                }
                MState::HttpBody {
                    mut head,
                    content_length,
                } => {
                    if self.buf.len() < content_length {
                        self.state = MState::HttpBody {
                            head,
                            content_length,
                        };
                        return Step::NeedMore;
                    }
                    head.body = self.buf.drain(..content_length).collect();
                    self.state = MState::Paused;
                    return Step::HttpRequest(Box::new(head));
                }
                MState::Drain { remaining, then } => {
                    let take = (self.buf.len() as u64).min(remaining) as usize;
                    self.buf.drain(..take);
                    let remaining = remaining - take as u64;
                    if remaining == 0 {
                        return Step::Oversized(then);
                    }
                    self.state = MState::Drain { remaining, then };
                    return Step::NeedMore;
                }
                MState::Paused => {
                    self.state = MState::Paused;
                    return Step::NeedMore;
                }
                MState::Closed => {
                    return Step::NeedMore;
                }
            }
        }
    }
}

// --- non-blocking write helper ---------------------------------------------

/// Writes as much of `out[*pos..]` as the sink accepts right now.
/// `Ok(true)` = fully flushed; `Ok(false)` = the sink would block
/// (short write). Separated from the reactor so short-write handling is
/// unit-testable with a throttled sink.
pub(crate) fn write_pending<W: Write>(out: &[u8], pos: &mut usize, w: &mut W) -> io::Result<bool> {
    while *pos < out.len() {
        match w.write(&out[*pos..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "peer stopped accepting bytes",
                ))
            }
            Ok(n) => *pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

// --- the reactor ------------------------------------------------------------

const LISTENER_TOKEN: u64 = 0;
const WAKER_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Upper bound on one poll sleep even with no deadlines: a lost wakeup
/// (which should never happen) degrades to 1 s of latency, not a hang.
const MAX_POLL: Duration = Duration::from_secs(1);

/// A finished dispatch travelling from a pool worker back to the loop.
struct Completion {
    token: u64,
    bytes: Vec<u8>,
    close: bool,
}

/// Worker-side half of the completion channel.
struct DispatchQueue {
    completions: Mutex<Vec<Completion>>,
    waker: Arc<Waker>,
}

impl DispatchQueue {
    fn complete(&self, completion: Completion) {
        self.completions
            .lock()
            .expect("completion lock")
            .push(completion);
        self.waker.wake();
    }

    fn take(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.lock().expect("completion lock"))
    }

    fn is_empty(&self) -> bool {
        self.completions.lock().expect("completion lock").is_empty()
    }
}

/// One owned connection.
struct Conn {
    stream: TcpStream,
    machine: Machine,
    out: Vec<u8>,
    out_pos: usize,
    close_after_write: bool,
    /// A request is at a pool worker; reads pause until its response.
    dispatching: bool,
    last_activity: Instant,
    interest: Interest,
    /// The `/debug/conns` entry; updates are relaxed atomics, so
    /// mirroring costs the loop nothing observable.
    track: Arc<ConnTrack>,
}

impl Conn {
    fn has_pending_write(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Mirrors this connection's coarse state (and sniffed protocol)
    /// into its conntrack entry for `/debug/conns`.
    fn mirror(&self) {
        if let Some(protocol) = self.machine.protocol {
            self.track.set_protocol(protocol == Protocol::Framed);
        }
        let state = if self.dispatching {
            ConnState::Dispatching
        } else if self.has_pending_write() {
            ConnState::Writing
        } else if self.machine.has_partial() {
            ConnState::Reading
        } else if self.machine.protocol.is_none() {
            ConnState::Sniffing
        } else {
            ConnState::Idle
        };
        self.track.set_state(state);
    }

    /// Idle = safe to evict: between requests with nothing in flight.
    fn is_idle(&self) -> bool {
        !self.dispatching && !self.has_pending_write() && !self.machine.has_partial()
    }

    /// The readiness this connection currently needs.
    fn wanted_interest(&self) -> Interest {
        Interest {
            read: !self.dispatching && !self.close_after_write,
            write: self.has_pending_write(),
        }
    }

    /// When this connection should be given up on, given its state.
    fn deadline(
        &self,
        read_timeout: Option<Duration>,
        write_timeout: Option<Duration>,
        idle_timeout: Option<Duration>,
    ) -> Option<Instant> {
        if self.has_pending_write() {
            write_timeout.map(|t| self.last_activity + t)
        } else if self.dispatching {
            None // bounded by the dispatch itself
        } else if self.machine.has_partial() {
            read_timeout.map(|t| self.last_activity + t)
        } else {
            idle_timeout.map(|t| self.last_activity + t)
        }
    }

    fn queue_write(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }
}

struct Reactor {
    shared: Arc<Shared>,
    poller: Poller,
    listener: TcpListener,
    waker: Arc<Waker>,
    pool: ThreadPool,
    dispatch: Arc<DispatchQueue>,
    /// Jobs the bounded pool queue rejected; retried on completions.
    parked_jobs: VecDeque<Job>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    accepting: bool,
}

/// Spawns the reactor thread. The listener must already be bound and
/// non-blocking.
pub(crate) fn spawn(shared: Arc<Shared>, listener: TcpListener) -> io::Result<JoinHandle<()>> {
    let backend = if shared.config.force_poll_backend {
        Backend::Poll
    } else {
        Backend::Auto
    };
    let mut poller = Poller::with_backend(backend)?;
    let waker = Arc::new(Waker::new()?);
    shared.set_waker(Arc::clone(&waker));
    poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
    poller.register(waker.read_fd(), WAKER_TOKEN, Interest::READ)?;
    let pool = ThreadPool::new(shared.config.workers, shared.config.queue_capacity);
    shared.set_pool_depth(pool.depth_probe());
    let dispatch = Arc::new(DispatchQueue {
        completions: Mutex::new(Vec::new()),
        waker: Arc::clone(&waker),
    });
    let reactor = Reactor {
        shared,
        poller,
        listener,
        waker,
        pool,
        dispatch,
        parked_jobs: VecDeque::new(),
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
        accepting: true,
    };
    std::thread::Builder::new()
        .name("pclabel-net-reactor".to_string())
        .spawn(move || reactor.run())
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut busy_since = Instant::now();
        loop {
            self.process_completions();
            self.expire_deadlines();
            if self.shared.shutting_down() {
                self.shed_for_drain();
                if self.drained() {
                    break;
                }
            }
            let timeout = self.next_timeout();
            // How long this wakeup kept the one shared thread busy — the
            // latency every other ready connection waited through.
            self.shared
                .metrics
                .loop_busy
                .observe(busy_since.elapsed().as_secs_f64());
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                break; // fatal poller failure: drop everything
            }
            busy_since = Instant::now();
            // `events` is a local, so iterating it does not conflict
            // with the handlers' `&mut self`; the buffer (and its
            // capacity) is reused by the next wait.
            for &event in &events {
                match event.token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => self.waker.drain(),
                    token => self.conn_ready(token, event),
                }
            }
        }
        // Workers may still be running dispatches for connections that
        // are already gone; let them finish cleanly.
        self.pool.shutdown();
    }

    /// No work can ever arrive again once shutdown has shed idle
    /// connections and the in-flight pipeline is empty.
    fn drained(&self) -> bool {
        self.conns.is_empty() && self.parked_jobs.is_empty() && self.dispatch.is_empty()
    }

    /// The nearest connection deadline, clamped to [0, MAX_POLL].
    fn next_timeout(&self) -> Duration {
        let now = Instant::now();
        let config = &self.shared.config;
        self.conns
            .values()
            .filter_map(|c| {
                c.deadline(
                    config.read_timeout,
                    config.write_timeout,
                    config.idle_timeout,
                )
            })
            .map(|deadline| deadline.saturating_duration_since(now))
            .min()
            .map_or(MAX_POLL, |d| d.min(MAX_POLL))
    }

    // --- accepting ---------------------------------------------------------

    fn accept_ready(&mut self) {
        if !self.accepting {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.shared.metrics.accepts.inc();
                    self.admit(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                // Persistent accept failure (EMFILE, aborted handshake):
                // the listener stays level-triggered-readable, so a bare
                // break would re-poll instantly and livelock the loop at
                // 100% CPU. Back off briefly, like the pool acceptor —
                // a bounded stall beats a spin; connection I/O resumes
                // right after.
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(10));
                    break;
                }
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if self.shared.shutting_down() {
            return; // drop: no new work during drain
        }
        if self.conns.len() >= self.shared.config.max_connections.max(1) {
            // Evict the least-recently-active idle connection; if every
            // connection is mid-request, refuse the newcomer instead.
            let lru = self
                .conns
                .iter()
                .filter(|(_, c)| c.is_idle())
                .min_by_key(|(_, c)| c.last_activity)
                .map(|(&token, _)| token);
            match lru {
                Some(token) => {
                    self.shared.metrics.evictions.inc();
                    self.close(token);
                }
                None => return,
            }
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let token = self.next_token;
        self.next_token += 1;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "unknown".to_string());
        let conn = Conn {
            stream,
            machine: Machine::new(self.shared.config.max_frame),
            out: Vec::new(),
            out_pos: 0,
            close_after_write: false,
            dispatching: false,
            last_activity: Instant::now(),
            interest: Interest::READ,
            track: self.shared.conns.register(peer),
        };
        if self
            .poller
            .register(conn.stream.as_raw_fd(), token, Interest::READ)
            .is_ok()
        {
            self.conns.insert(token, conn);
            self.shared
                .metrics
                .open_connections
                .set(self.conns.len() as u64);
        } else {
            self.shared.conns.deregister(conn.track.id());
        }
    }

    // --- per-connection readiness -------------------------------------------

    fn conn_ready(&mut self, token: u64, event: Event) {
        let Some(conn) = self.conns.get(&token) else {
            return; // already closed this batch
        };
        // A true hangup (ERR/HUP — both directions dead, unmaskable
        // under both backends) on a connection that is not reading
        // would otherwise be re-reported every iteration: close now.
        // Half-closes arrive as `readable` and take the EOF path below.
        if event.hangup && (conn.dispatching || conn.close_after_write) {
            // An in-flight dispatch's response is undeliverable; the
            // completion handler tolerates the missing connection.
            self.close(token);
            return;
        }
        if event.writable && conn.has_pending_write() {
            self.flush(token);
            // Reading pauses while responses are stuck (see read_ready);
            // now that the peer drained them, pipelined requests still
            // sitting in the machine's buffer can continue without
            // waiting for new bytes to arrive.
            if let Some(conn) = self.conns.get_mut(&token) {
                if !conn.dispatching
                    && !conn.close_after_write
                    && !conn.has_pending_write()
                    && !conn.machine.is_paused()
                    && conn.machine.has_partial()
                {
                    self.pump(token);
                }
            }
        }
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        if event.readable || event.hangup {
            if conn.dispatching || conn.close_after_write {
                return; // not reading right now (interest excludes it)
            }
            self.read_ready(token);
        }
    }

    fn read_ready(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.has_pending_write() {
                // The peer is not draining responses (e.g. a flood of
                // overload rejections, which answer without occupying a
                // worker): stop consuming input so the out-buffer stays
                // bounded by one read chunk's worth of requests.
                break;
            }
            let mut chunk = [0u8; 8192];
            match conn.stream.read(&mut chunk) {
                // EOF: between requests it is a clean close; inside one
                // it aborts, matching the blocking model.
                Ok(0) => {
                    self.close(token);
                    return;
                }
                Ok(n) => {
                    conn.machine.push(&chunk[..n]);
                    conn.track.add_in(n as u64);
                    conn.last_activity = Instant::now();
                    self.pump(token);
                    let Some(conn) = self.conns.get(&token) else {
                        return;
                    };
                    if conn.dispatching || conn.close_after_write {
                        break; // request in flight: stop consuming input
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
        self.update_interest(token);
    }

    /// Runs the machine over buffered bytes until it needs more input,
    /// dispatches a request, or errors out. Overload rejections are
    /// handled *inside* this loop (queue the error, re-arm the machine,
    /// keep pumping): recursing through `flush` instead would nest one
    /// stack frame per pipelined request in the buffer, and a client can
    /// pipeline thousands of tiny requests into one read chunk.
    fn pump(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            match conn.machine.next() {
                Step::NeedMore => break,
                Step::SendContinue => {
                    conn.queue_write(http::CONTINUE);
                    continue;
                }
                Step::FramedRequest(payload) => {
                    if self.dispatch_framed(token, payload) {
                        break;
                    }
                    // Rejected (overload): the error response is queued
                    // and the connection is not dispatching; re-arm for
                    // the next buffered request.
                    let Some(conn) = self.conns.get_mut(&token) else {
                        return;
                    };
                    conn.machine.resume();
                }
                Step::HttpRequest(request) => {
                    if self.dispatch_http(token, request) {
                        break;
                    }
                    let Some(conn) = self.conns.get_mut(&token) else {
                        return;
                    };
                    if conn.close_after_write {
                        break; // non-keep-alive 429: stop reading
                    }
                    conn.machine.resume();
                }
                Step::Oversized(oversize) => {
                    let bytes = oversize_response(oversize);
                    conn.queue_write(&bytes);
                    conn.close_after_write = true;
                    break;
                }
                Step::HttpError { status, message } => {
                    let bytes = http::response_bytes(status, &http::error_body(message), false);
                    conn.queue_write(&bytes);
                    conn.close_after_write = true;
                    break;
                }
            }
        }
        self.flush(token);
    }

    // --- dispatching --------------------------------------------------------

    /// `true` = the request reached the pool (or parked); `false` = it
    /// was refused for overload and the framed error response is queued
    /// (the request was consumed, so the stream stays in sync and the
    /// connection stays usable — the caller re-arms and keeps pumping).
    fn dispatch_framed(&mut self, token: u64, payload: Vec<u8>) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            return true;
        };
        conn.dispatching = true;
        conn.track.inc_requests();
        let shared = Arc::clone(&self.shared);
        let queue = Arc::clone(&self.dispatch);
        let job: Job = Box::new(move || {
            let (response, shutdown) = match std::str::from_utf8(&payload) {
                Ok(line) => process_line(line, &shared),
                Err(_) => (utf8_error_json(), false),
            };
            // Responses are always sent whole, even above the request
            // cap (same as the blocking model); encode_frame can only
            // fail beyond MAX_FRAME_CEILING, where closing is all that
            // is left.
            let (bytes, broken) = match encode_frame(
                response.to_string().as_bytes(),
                crate::frame::MAX_FRAME_CEILING,
            ) {
                Ok(bytes) => (bytes, false),
                Err(_) => (Vec::new(), true),
            };
            let close = shutdown || broken || shared.shutting_down();
            queue.complete(Completion {
                token,
                bytes,
                close,
            });
        });
        if self.try_submit(job) {
            return true;
        }
        // Pool queue and parking lot both full: answer the backpressure
        // error ourselves.
        let bytes = encode_frame(
            overloaded_error_json().to_string().as_bytes(),
            crate::frame::MAX_FRAME_CEILING,
        )
        .expect("overload frame is tiny");
        self.reject_overloaded(token, &bytes, false);
        false
    }

    /// Same contract as [`Reactor::dispatch_framed`]; a rejected
    /// non-keep-alive request additionally sets `close_after_write`.
    fn dispatch_http(&mut self, token: u64, request: Box<http::Request>) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            return true;
        };
        conn.dispatching = true;
        conn.track.inc_requests();
        // Captured before the job takes the request: the 429 path needs
        // to know whether this exchange would have kept the connection.
        let keep_alive_on_reject = request.keep_alive();
        let shared = Arc::clone(&self.shared);
        let queue = Arc::clone(&self.dispatch);
        let job: Job = Box::new(move || {
            let routed = http::route(&request, &shared);
            let keep_alive = request.keep_alive() && !routed.shutdown && !shared.shutting_down();
            let bytes = http::routed_bytes(&routed, keep_alive);
            queue.complete(Completion {
                token,
                bytes,
                close: !keep_alive,
            });
        });
        if self.try_submit(job) {
            return true;
        }
        let body = overloaded_error_json().to_string();
        let bytes = http::response_bytes(429, &body, keep_alive_on_reject);
        self.reject_overloaded(token, &bytes, !keep_alive_on_reject);
        false
    }

    /// Hands a job to the pool, parking it if the queue is full and the
    /// parking lot is under [`ServerConfig::max_parked`]. `false` = both
    /// are full; the caller must answer the overload itself.
    ///
    /// [`ServerConfig::max_parked`]: crate::server::ServerConfig::max_parked
    fn try_submit(&mut self, job: Job) -> bool {
        match self.pool.try_execute(job) {
            Ok(()) => true,
            // Queue full: park it if the lot has room. Every completion
            // frees a slot, so the retry in process_completions always
            // makes progress.
            Err(TryExecuteError::Full(job)) => {
                if self.parked_jobs.len() < self.shared.config.max_parked {
                    self.parked_jobs.push_back(job);
                    self.note_parked();
                    true
                } else {
                    false
                }
            }
            Err(TryExecuteError::Closed(_)) => true, // shutting down: drop
        }
    }

    /// Queues a backpressure error for a request that never reached the
    /// pool. Deliberately does NOT flush or resume: the pump loop the
    /// rejection happened under continues iteratively and flushes once
    /// at its end (no recursion per pipelined request).
    fn reject_overloaded(&mut self, token: u64, bytes: &[u8], close: bool) {
        self.shared.metrics.overloaded.inc();
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.dispatching = false;
        conn.close_after_write |= close;
        conn.queue_write(bytes);
        conn.last_activity = Instant::now();
    }

    fn process_completions(&mut self) {
        let completions = self.dispatch.take();
        let had_completions = !completions.is_empty();
        for completion in completions {
            // The connection may be gone (write-timeout abort while its
            // dispatch ran): drop the orphaned response.
            let Some(conn) = self.conns.get_mut(&completion.token) else {
                continue;
            };
            conn.dispatching = false;
            conn.close_after_write |= completion.close;
            conn.queue_write(&completion.bytes);
            conn.last_activity = Instant::now();
            self.flush(completion.token);
        }
        if had_completions {
            while let Some(job) = self.parked_jobs.pop_front() {
                match self.pool.try_execute(job) {
                    Ok(()) => {}
                    Err(TryExecuteError::Full(job)) => {
                        self.parked_jobs.push_front(job);
                        break;
                    }
                    Err(TryExecuteError::Closed(_)) => {
                        self.parked_jobs.clear();
                        break;
                    }
                }
            }
            self.note_parked();
        }
    }

    /// Mirrors the parking-lot depth into its gauge after a change.
    fn note_parked(&self) {
        self.shared
            .metrics
            .parked_jobs
            .set(self.parked_jobs.len() as u64);
    }

    // --- writing ------------------------------------------------------------

    /// Pushes pending output; on completion either closes or re-arms
    /// the machine for the next (possibly already-buffered) request.
    fn flush(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.has_pending_write() {
            let before = conn.out_pos;
            match write_pending(&conn.out, &mut conn.out_pos, &mut conn.stream) {
                Ok(true) => {
                    conn.track.add_out((conn.out.len() - before) as u64);
                    conn.out.clear();
                    conn.out_pos = 0;
                    conn.last_activity = Instant::now();
                }
                Ok(false) => {
                    conn.track.add_out((conn.out_pos - before) as u64);
                    conn.last_activity = Instant::now();
                    self.update_interest(token);
                    return; // short write: wait for writability
                }
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
        if conn.close_after_write && !conn.has_pending_write() {
            self.close(token);
            return;
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if !conn.dispatching && conn.machine.is_paused() {
            // Response fully written: next request. Pipelined bytes may
            // already be buffered, so pump before waiting on the socket.
            conn.machine.resume();
            self.pump(token);
        }
        self.update_interest(token);
    }

    // --- deadlines & shutdown ----------------------------------------------

    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        let config = &self.shared.config;
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter_map(|(&token, c)| {
                c.deadline(
                    config.read_timeout,
                    config.write_timeout,
                    config.idle_timeout,
                )
                .filter(|&deadline| now >= deadline)
                .map(|_| token)
            })
            .collect();
        for token in expired {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            // A stalled oversize drain still gets its error response
            // (bounded by write_timeout), like the blocking model's
            // timeout-bounded drain; everything else is aborted.
            if let Some(oversize) = conn.machine.abandon_drain() {
                let bytes = oversize_response(oversize);
                conn.queue_write(&bytes);
                conn.close_after_write = true;
                conn.last_activity = now;
                self.flush(token);
            } else {
                self.close(token);
            }
        }
    }

    /// On shutdown: stop accepting and close every connection that is
    /// not owed a response; dispatching/writing connections drain.
    fn shed_for_drain(&mut self) {
        if self.accepting {
            let _ = self.poller.deregister(self.listener.as_raw_fd());
            self.accepting = false;
        }
        let doomed: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| !c.dispatching && !c.has_pending_write())
            .map(|(&token, _)| token)
            .collect();
        for token in doomed {
            self.close(token);
        }
    }

    // --- bookkeeping --------------------------------------------------------

    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.mirror();
        let wanted = conn.wanted_interest();
        if wanted != conn.interest {
            let fd = conn.stream.as_raw_fd();
            if self.poller.modify(fd, token, wanted).is_ok() {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.interest = wanted;
                }
            }
        }
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.shared.conns.deregister(conn.track.id());
            self.shared
                .metrics
                .open_connections
                .set(self.conns.len() as u64);
            // `conn.stream` drops here, closing the socket.
        }
    }
}

/// The error response for an oversized request, per protocol — the same
/// bytes the blocking model produces.
fn oversize_response(oversize: Oversize) -> Vec<u8> {
    match oversize {
        Oversize::Frame { len, max } => encode_frame(
            oversize_error_json(len, max).to_string().as_bytes(),
            crate::frame::MAX_FRAME_CEILING,
        )
        .expect("error frame is tiny"),
        Oversize::HttpBody => http::response_bytes(
            413,
            &http::error_body("request body exceeds the frame size limit"),
            false,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // -- Machine: framed protocol, partial reads ----------------------------

    /// Feeds `wire` to a fresh machine in `chunk`-byte slices and
    /// returns every non-NeedMore step, resuming after each request.
    fn run_chunked(wire: &[u8], chunk: usize, max_frame: u32) -> Vec<String> {
        let mut machine = Machine::new(max_frame);
        let mut steps = Vec::new();
        for piece in wire.chunks(chunk.max(1)) {
            machine.push(piece);
            loop {
                match machine.next() {
                    Step::NeedMore => break,
                    Step::FramedRequest(payload) => {
                        steps.push(format!("frame:{}", String::from_utf8_lossy(&payload)));
                        machine.resume();
                    }
                    Step::HttpRequest(request) => {
                        steps.push(format!(
                            "http:{} {} body:{}",
                            request.method,
                            request.target,
                            String::from_utf8_lossy(&request.body)
                        ));
                        machine.resume();
                    }
                    Step::SendContinue => steps.push("continue".to_string()),
                    Step::Oversized(Oversize::Frame { len, max }) => {
                        steps.push(format!("oversized-frame:{len}>{max}"));
                    }
                    Step::Oversized(Oversize::HttpBody) => {
                        steps.push("oversized-http".to_string());
                    }
                    Step::HttpError { status, .. } => {
                        steps.push(format!("http-error:{status}"));
                    }
                }
            }
        }
        steps
    }

    fn framed_wire(payloads: &[&str]) -> Vec<u8> {
        let mut wire = Vec::new();
        for p in payloads {
            wire.extend_from_slice(&encode_frame(p.as_bytes(), u32::MAX >> 4).unwrap());
        }
        wire
    }

    #[test]
    fn frame_split_across_wakeups_byte_at_a_time() {
        let wire = framed_wire(&[r#"{"op":"list"}"#, r#"{"op":"health"}"#]);
        // Every chunking of the same wire bytes yields the same requests.
        for chunk in [1, 2, 3, 5, wire.len()] {
            assert_eq!(
                run_chunked(&wire, chunk, 1 << 20),
                vec![
                    r#"frame:{"op":"list"}"#.to_string(),
                    r#"frame:{"op":"health"}"#.to_string()
                ],
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn frame_header_split_mid_length_prefix() {
        let wire = framed_wire(&["abc"]);
        let mut machine = Machine::new(1 << 20);
        machine.push(&wire[..2]); // half the length prefix
        assert!(matches!(machine.next(), Step::NeedMore));
        assert!(machine.has_partial(), "half a prefix counts as partial");
        machine.push(&wire[2..5]); // rest of prefix + 1 payload byte
        assert!(matches!(machine.next(), Step::NeedMore));
        assert!(machine.has_partial(), "mid-frame must count as partial");
        machine.push(&wire[5..]);
        match machine.next() {
            Step::FramedRequest(p) => assert_eq!(p, b"abc"),
            _ => panic!("expected a complete frame"),
        }
        assert!(machine.is_paused());
    }

    #[test]
    fn oversized_frame_drains_then_errors() {
        let mut wire = 100u32.to_be_bytes().to_vec();
        wire.extend_from_slice(&[0x55; 100]);
        let steps = run_chunked(&wire, 7, 10);
        assert_eq!(steps, vec!["oversized-frame:100>10".to_string()]);

        // Abandoning a stalled drain still yields the error.
        let mut machine = Machine::new(10);
        machine.push(&wire[..50]);
        assert!(matches!(machine.next(), Step::NeedMore));
        assert_eq!(
            machine.abandon_drain(),
            Some(Oversize::Frame { len: 100, max: 10 })
        );
    }

    // -- Machine: HTTP, partial reads ---------------------------------------

    #[test]
    fn http_request_delivered_one_byte_at_a_time() {
        let wire =
            b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        for chunk in [1usize, 3, wire.len()] {
            assert_eq!(
                run_chunked(wire, chunk, 1 << 20),
                vec![
                    "http:POST /query body:{\"a\":1}".to_string(),
                    "http:GET /healthz body:".to_string(),
                ],
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn http_expect_continue_interim_then_body() {
        let head =
            b"POST / HTTP/1.1\r\nHost: x\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\n";
        let mut machine = Machine::new(1 << 20);
        machine.push(head);
        assert!(matches!(machine.next(), Step::SendContinue));
        assert!(matches!(machine.next(), Step::NeedMore));
        assert!(machine.has_partial());
        machine.push(b"ok");
        match machine.next() {
            Step::HttpRequest(r) => assert_eq!(r.body, b"ok"),
            _ => panic!("expected the buffered request"),
        }
        // Body already buffered with the head: no interim response,
        // matching the blocking adapter.
        let mut machine = Machine::new(1 << 20);
        machine.push(head);
        machine.push(b"ok");
        assert!(matches!(machine.next(), Step::HttpRequest(_)));
    }

    #[test]
    fn http_malformed_and_oversized_requests() {
        // Missing parts of the request line.
        let mut machine = Machine::new(1 << 20);
        machine.push(b"GET \r\n\r\n");
        assert!(matches!(
            machine.next(),
            Step::HttpError { status: 400, .. }
        ));

        // Head too large.
        let mut machine = Machine::new(1 << 20);
        machine.push(b"GET / HTTP/1.1\r\n");
        machine.push(&vec![b'a'; http::MAX_HEAD_BYTES + 1]);
        assert!(matches!(
            machine.next(),
            Step::HttpError { status: 431, .. }
        ));

        // Transfer-encoding unsupported.
        let mut machine = Machine::new(1 << 20);
        machine.push(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        assert!(matches!(
            machine.next(),
            Step::HttpError { status: 501, .. }
        ));

        // Body above the frame cap: drain the declared body, then 413.
        let mut machine = Machine::new(16);
        machine.push(b"POST / HTTP/1.1\r\nContent-Length: 40\r\n\r\n");
        machine.push(&[b'x'; 25]);
        assert!(matches!(machine.next(), Step::NeedMore));
        machine.push(&[b'x'; 15]);
        assert!(matches!(
            machine.next(),
            Step::Oversized(Oversize::HttpBody)
        ));
    }

    #[test]
    fn sniff_locks_the_protocol_once() {
        // Framed first: later prologues are lengths even if they look
        // like ASCII.
        let mut machine = Machine::new(1 << 20);
        let mut wire = framed_wire(&["x"]);
        wire.extend_from_slice(&5u32.to_be_bytes());
        wire.extend_from_slice(b"hello");
        machine.push(&wire);
        assert!(matches!(machine.next(), Step::FramedRequest(_)));
        machine.resume();
        match machine.next() {
            Step::FramedRequest(p) => assert_eq!(p, b"hello"),
            _ => panic!("second frame"),
        }
    }

    // -- write path: short writes -------------------------------------------

    /// A sink that accepts at most `per_call` bytes, then signals
    /// WouldBlock every other call — a worst-case slow peer.
    struct Throttled {
        accepted: Vec<u8>,
        per_call: usize,
        block_next: bool,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.block_next {
                self.block_next = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "slow peer"));
            }
            self.block_next = true;
            let n = buf.len().min(self.per_call);
            self.accepted.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn short_writes_of_a_large_response_complete_incrementally() {
        let response: Vec<u8> = (0..u8::MAX).cycle().take(10_000).collect();
        let mut sink = Throttled {
            accepted: Vec::new(),
            per_call: 333,
            block_next: false,
        };
        let mut pos = 0usize;
        let mut rounds = 0usize;
        loop {
            match write_pending(&response, &mut pos, &mut sink).unwrap() {
                true => break,
                false => {
                    rounds += 1; // reactor would wait for writability here
                    assert!(rounds < 10_000, "no progress");
                }
            }
        }
        assert_eq!(sink.accepted, response);
    }

    #[test]
    fn write_zero_is_an_error_not_a_spin() {
        struct Dead;
        impl Write for Dead {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut pos = 0;
        assert!(write_pending(b"abc", &mut pos, &mut Dead).is_err());
    }
}
