//! The event-driven connection model: N reactor threads each own a
//! slice of the connections as non-blocking state machines multiplexed
//! over [`crate::sys::Poller`] (epoll on Linux, `poll(2)` elsewhere).
//!
//! ## Why
//!
//! The thread-pool model pins one worker per *connection*, so `workers`
//! idle keep-alive clients starve every later client even though the
//! server is doing no work. The reactor pins workers per *request*
//! instead: connections cost a file descriptor and a small buffer while
//! idle, and only occupy a pool worker for the duration of one dispatch.
//! N idle connections no longer block the N+1st client. One loop can
//! still bottleneck on parse/flush CPU, so
//! [`ServerConfig::reactors`](crate::server::ServerConfig) scales the
//! plane to N loops with private connection tables: on Linux (epoll
//! backend) every loop accepts from its own `SO_REUSEPORT` listener and
//! the kernel balances accepts; everywhere else loop 0 accepts and
//! hands fds to its peers round-robin through per-loop [`Inbox`]es.
//! All loops feed the one shared [`ThreadPool`], so dispatch
//! backpressure stays a process-wide property.
//!
//! ## Anatomy
//!
//! * [`Machine`] — the incremental protocol state machine: it consumes
//!   raw bytes (in whatever slices the socket delivers them) and emits
//!   complete framed or HTTP requests — including incrementally decoded
//!   `Transfer-Encoding: chunked` bodies — reusing the exact parsing,
//!   routing and serialisation helpers of the blocking adapters so
//!   responses stay byte-identical between the two connection models.
//! * [`WriteQueue`] — responses are queued as byte *segments* and
//!   flushed with one `writev` per readiness (up to
//!   [`crate::sys::MAX_IOVECS`] segments a call), so a framed response
//!   ships its length prefix and payload without a concatenation copy.
//!   At [`ServerConfig::write_watermark`](crate::server::ServerConfig)
//!   queued bytes the loop stops *reading* from that connection until
//!   the peer drains its responses: per-connection memory is bounded by
//!   the watermark plus one read chunk, not by body size.
//! * Each loop — accepts, reads, and writes without ever blocking;
//!   fully-read requests are handed to the shared [`ThreadPool`]
//!   (dispatch can be arbitrarily slow — it must not stall the loop),
//!   and finished responses come back through the loop's completion
//!   queue plus its [`Waker`] pipe.
//! * Deadlines — each connection derives one deadline from its state
//!   (write-stalled → `write_timeout`, mid-request → `read_timeout`,
//!   idle → `idle_timeout`); the nearest deadline bounds the poll
//!   timeout and expired connections are aborted (or, for idle ones,
//!   quietly evicted).
//! * Connection cap —
//!   [`ServerConfig::max_connections`](crate::server::ServerConfig) is
//!   split evenly across the loops (remainder to loop 0); past a loop's
//!   budget, its least-recently-active *idle* connection is evicted to
//!   admit the newcomer; if every connection is mid-request, the
//!   newcomer is refused instead (bounded memory beats unbounded
//!   acceptance).
//! * Dispatch backpressure — when the pool's bounded queue is full,
//!   ready requests park in the owning loop, but only up to
//!   [`ServerConfig::max_parked`](crate::server::ServerConfig) per loop:
//!   past the cap the request is answered immediately with HTTP `429`
//!   or a framed `{"ok":false,"error":"overloaded"}` and the connection
//!   stays open, so a worker stall bounds queued-request memory instead
//!   of growing a `VecDeque` without limit.
//! * Graceful shutdown — every loop is woken, acceptors deregister,
//!   idle and mid-read connections close immediately, and in-flight
//!   dispatches drain: their responses are still written before the
//!   loops exit. The last loop out shuts the shared pool down.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::conntrack::{ConnState, ConnTrack};
use crate::frame::encode_frame;
use crate::http::{self, find_subsequence};
use crate::metrics::LoopMetrics;
use crate::pool::{Job, ThreadPool, TryExecuteError};
use crate::server::{
    is_http_prefix, overloaded_error_json, oversize_error_json, process_line, utf8_error_json,
    Shared,
};
use crate::sys::{self, Backend, Event, Interest, Poller, Waker};

// --- the protocol state machine --------------------------------------------

/// Which wire protocol a connection settled on (sniffed from its first
/// four bytes, exactly like the thread-pool model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Protocol {
    Framed,
    Http,
}

/// What a request was too large for; decides the error response shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Oversize {
    /// A framed payload above `max_frame`: framed error + close.
    Frame {
        /// Declared payload length.
        len: u32,
        /// Configured maximum.
        max: u32,
    },
    /// An HTTP body above `max_frame`: `413` + close.
    HttpBody,
}

/// How an HTTP request's body arrives after its head.
enum BodyPlan {
    /// `Content-Length: n` — n raw bytes follow.
    Length(usize),
    /// `Transfer-Encoding: chunked` — decoded incrementally.
    Chunked,
}

enum MState {
    /// Waiting for the 4-byte prologue: a protocol sniff on the first
    /// one, a frame length on every later one.
    Prologue,
    /// Reading a framed payload of known length.
    FrameBody { len: usize },
    /// Accumulating an HTTP request head (until `\r\n\r\n`); `scanned`
    /// marks how far the terminator search has already looked.
    HttpHead { scanned: usize },
    /// Head parsed with `Expect: 100-continue` and the body still to
    /// come: emit the interim response once, then read the body.
    HttpContinue { head: http::Request, plan: BodyPlan },
    /// Reading an HTTP body of known length.
    HttpBody {
        head: http::Request,
        content_length: usize,
    },
    /// Decoding a chunked HTTP body incrementally: the raw buffer only
    /// ever holds undecoded wire bytes, so an 8 MiB upload never sits
    /// in `buf` — decoded chunks move to the decoder as they complete.
    HttpChunked {
        head: http::Request,
        decoder: http::ChunkedDecoder,
    },
    /// Consuming an oversized payload so the error response is not
    /// destroyed by a connection reset (see `server::drain`).
    Drain { remaining: u64, then: Oversize },
    /// A complete request was emitted and is dispatching/writing;
    /// requests are strictly sequential per connection, so no further
    /// bytes are interpreted until [`Machine::resume`].
    Paused,
    /// Terminal: an error response is being written, then close.
    Closed,
}

/// What [`Machine::next`] produced.
pub(crate) enum Step {
    /// Buffered bytes are exhausted; read more from the socket.
    NeedMore,
    /// One complete framed request payload.
    FramedRequest(Vec<u8>),
    /// One complete HTTP request (head + body).
    HttpRequest(Box<http::Request>),
    /// Write `HTTP/1.1 100 Continue` now, keep reading the body.
    SendContinue,
    /// An oversized payload finished draining: write the matching error
    /// response and close.
    Oversized(Oversize),
    /// Malformed HTTP: write this error response and close.
    HttpError { status: u16, message: &'static str },
}

/// The incremental protocol state machine. Push bytes in whatever
/// slices the socket delivers them; pull [`Step`]s out. Pure — no I/O —
/// so partial-read behaviour is unit-testable without sockets.
pub(crate) struct Machine {
    max_frame: u32,
    buf: Vec<u8>,
    protocol: Option<Protocol>,
    state: MState,
}

impl Machine {
    pub(crate) fn new(max_frame: u32) -> Machine {
        Machine {
            max_frame,
            buf: Vec::new(),
            protocol: None,
            state: MState::Prologue,
        }
    }

    /// Appends newly-read socket bytes.
    pub(crate) fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Raw bytes read off the socket but not yet consumed into a
    /// request; feeds the per-connection buffered-bytes accounting in
    /// `/debug/conns`.
    pub(crate) fn raw_buffered(&self) -> usize {
        self.buf.len()
    }

    /// `true` while a request is partially read: a stalled peer should
    /// be aborted on `read_timeout`, not treated as idle.
    pub(crate) fn has_partial(&self) -> bool {
        match self.state {
            MState::FrameBody { .. }
            | MState::HttpContinue { .. }
            | MState::HttpBody { .. }
            | MState::HttpChunked { .. }
            | MState::Drain { .. } => true,
            MState::Prologue | MState::HttpHead { .. } => !self.buf.is_empty(),
            MState::Paused | MState::Closed => false,
        }
    }

    pub(crate) fn is_paused(&self) -> bool {
        matches!(self.state, MState::Paused)
    }

    /// Gives up on an in-progress drain (the peer stalled): returns the
    /// pending oversize error so the caller can still send it, exactly
    /// like the blocking model's timeout-bounded `drain()`.
    pub(crate) fn abandon_drain(&mut self) -> Option<Oversize> {
        if let MState::Drain { then, .. } = self.state {
            self.state = MState::Closed;
            return Some(then);
        }
        None
    }

    /// Re-arms the machine for the next request after a response was
    /// fully written (keep-alive).
    pub(crate) fn resume(&mut self) {
        debug_assert!(self.is_paused());
        // A large Content-Length body grows `buf` to the body size;
        // give the capacity back between requests so an idle keep-alive
        // connection does not pin its largest-ever request forever.
        if self.buf.capacity() > 64 * 1024 {
            self.buf.shrink_to(16 * 1024);
        }
        self.state = match self.protocol {
            Some(Protocol::Http) => MState::HttpHead { scanned: 0 },
            _ => MState::Prologue,
        };
    }

    /// Advances as far as the buffered bytes allow and reports the next
    /// action.
    pub(crate) fn next(&mut self) -> Step {
        loop {
            match std::mem::replace(&mut self.state, MState::Closed) {
                MState::Prologue => {
                    if self.buf.len() < 4 {
                        self.state = MState::Prologue;
                        return Step::NeedMore;
                    }
                    let first: [u8; 4] = self.buf[..4].try_into().expect("4 bytes");
                    if self.protocol.is_none() {
                        if is_http_prefix(&first) {
                            self.protocol = Some(Protocol::Http);
                            self.state = MState::HttpHead { scanned: 0 };
                            continue;
                        }
                        self.protocol = Some(Protocol::Framed);
                    }
                    self.buf.drain(..4);
                    let len = u32::from_be_bytes(first);
                    if len > self.max_frame {
                        self.state = MState::Drain {
                            remaining: u64::from(len),
                            then: Oversize::Frame {
                                len,
                                max: self.max_frame,
                            },
                        };
                        continue;
                    }
                    self.state = MState::FrameBody { len: len as usize };
                }
                MState::FrameBody { len } => {
                    if self.buf.len() < len {
                        self.state = MState::FrameBody { len };
                        return Step::NeedMore;
                    }
                    let payload: Vec<u8> = self.buf.drain(..len).collect();
                    self.state = MState::Paused;
                    return Step::FramedRequest(payload);
                }
                MState::HttpHead { scanned } => {
                    // Resume the terminator search where the last pass
                    // stopped (rewound 3 bytes in case `\r\n\r\n`
                    // straddles the old buffer end); rescanning from 0
                    // would make byte-at-a-time heads O(n²) on the one
                    // thread every connection shares.
                    let start = scanned.saturating_sub(3);
                    let Some(pos) =
                        find_subsequence(&self.buf[start..], b"\r\n\r\n").map(|p| p + start)
                    else {
                        if self.buf.len() > http::MAX_HEAD_BYTES {
                            return Step::HttpError {
                                status: 431,
                                message: "request head too large",
                            };
                        }
                        self.state = MState::HttpHead {
                            scanned: self.buf.len(),
                        };
                        return Step::NeedMore;
                    };
                    let Ok(head) = std::str::from_utf8(&self.buf[..pos]) else {
                        return Step::HttpError {
                            status: 400,
                            message: "request head is not valid UTF-8",
                        };
                    };
                    // Parse from the borrowed bytes first — `parse_head`
                    // returns an owned Request, so the head never needs
                    // its own copy — then drop it from the buffer.
                    let head = match http::parse_head(head) {
                        Ok(head) => head,
                        Err((status, message)) => return Step::HttpError { status, message },
                    };
                    self.buf.drain(..pos + 4);
                    let framing = match http::body_framing(&head) {
                        Ok(framing) => framing,
                        Err((status, message)) => return Step::HttpError { status, message },
                    };
                    match framing {
                        http::BodyFraming::Chunked => {
                            if head.expects_continue() {
                                // A chunked body's length is unknown, so
                                // unlike Content-Length it can never be
                                // "already buffered": the interim
                                // response always precedes it (matching
                                // the blocking adapter).
                                self.state = MState::HttpContinue {
                                    head,
                                    plan: BodyPlan::Chunked,
                                };
                                return Step::SendContinue;
                            }
                            self.state = MState::HttpChunked {
                                head,
                                decoder: http::ChunkedDecoder::new(self.max_frame as usize),
                            };
                        }
                        http::BodyFraming::Length(content_length) => {
                            if content_length > self.max_frame as usize {
                                let remaining =
                                    content_length.saturating_sub(self.buf.len()) as u64;
                                self.buf.clear();
                                self.state = MState::Drain {
                                    remaining,
                                    then: Oversize::HttpBody,
                                };
                                continue;
                            }
                            if head.expects_continue() && self.buf.len() < content_length {
                                self.state = MState::HttpContinue {
                                    head,
                                    plan: BodyPlan::Length(content_length),
                                };
                                return Step::SendContinue;
                            }
                            self.state = MState::HttpBody {
                                head,
                                content_length,
                            };
                        }
                    }
                }
                MState::HttpContinue { head, plan } => {
                    // The interim response was queued by the caller.
                    self.state = match plan {
                        BodyPlan::Length(content_length) => MState::HttpBody {
                            head,
                            content_length,
                        },
                        BodyPlan::Chunked => MState::HttpChunked {
                            head,
                            decoder: http::ChunkedDecoder::new(self.max_frame as usize),
                        },
                    };
                }
                MState::HttpBody {
                    mut head,
                    content_length,
                } => {
                    if self.buf.len() < content_length {
                        self.state = MState::HttpBody {
                            head,
                            content_length,
                        };
                        return Step::NeedMore;
                    }
                    head.body = self.buf.drain(..content_length).collect();
                    self.state = MState::Paused;
                    return Step::HttpRequest(Box::new(head));
                }
                MState::HttpChunked {
                    mut head,
                    mut decoder,
                } => {
                    match decoder.decode(&mut self.buf) {
                        Ok(true) => {
                            head.body = decoder.into_body();
                            self.state = MState::Paused;
                            return Step::HttpRequest(Box::new(head));
                        }
                        Ok(false) => {
                            self.state = MState::HttpChunked { head, decoder };
                            return Step::NeedMore;
                        }
                        // Terminal (bad framing, oversize body, huge
                        // trailers): the stream cannot be
                        // re-synchronised; error response, then close —
                        // the same bytes the blocking adapter sends.
                        Err((status, message)) => return Step::HttpError { status, message },
                    }
                }
                MState::Drain { remaining, then } => {
                    let take = (self.buf.len() as u64).min(remaining) as usize;
                    self.buf.drain(..take);
                    let remaining = remaining - take as u64;
                    if remaining == 0 {
                        return Step::Oversized(then);
                    }
                    self.state = MState::Drain { remaining, then };
                    return Step::NeedMore;
                }
                MState::Paused => {
                    self.state = MState::Paused;
                    return Step::NeedMore;
                }
                MState::Closed => {
                    return Step::NeedMore;
                }
            }
        }
    }
}

// --- the vectored write queue ----------------------------------------------

/// The sink a [`WriteQueue`] flushes into — `writev` semantics (write
/// as much of the gathered slices as fits right now). A trait so
/// short-write and iovec-boundary handling is unit-testable without
/// sockets.
pub(crate) trait WritevSink {
    fn writev(&mut self, bufs: &[&[u8]]) -> io::Result<usize>;
}

/// The real sink: `writev(2)` on the connection's socket.
struct StreamSink<'a>(&'a TcpStream);

impl WritevSink for StreamSink<'_> {
    fn writev(&mut self, bufs: &[&[u8]]) -> io::Result<usize> {
        sys::vectored_write(self.0.as_raw_fd(), bufs)
    }
}

/// Pending output as a queue of byte segments, flushed with gathered
/// writes. Responses are queued as the segments their producers already
/// own (a framed response is its 4-byte prefix plus the payload) and
/// stitched back together by `writev` — no concatenation copy, and a
/// partial write never loses its position.
pub(crate) struct WriteQueue {
    segs: VecDeque<Vec<u8>>,
    /// How far into `segs[0]` earlier flushes already got.
    front_pos: usize,
    /// Total unsent bytes across all segments.
    queued: usize,
}

impl WriteQueue {
    pub(crate) fn new() -> WriteQueue {
        WriteQueue {
            segs: VecDeque::new(),
            front_pos: 0,
            queued: 0,
        }
    }

    /// Queues one owned segment; empty segments are dropped.
    pub(crate) fn push(&mut self, seg: Vec<u8>) {
        if seg.is_empty() {
            return;
        }
        self.queued += seg.len();
        self.segs.push_back(seg);
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Unsent bytes currently queued (the backpressure watermark input).
    pub(crate) fn queued(&self) -> usize {
        self.queued
    }

    /// Writes as much as the sink accepts right now, gathering up to
    /// [`sys::MAX_IOVECS`] segments per call. Returns `(bytes_written,
    /// fully_drained)`; `fully_drained == false` means the sink would
    /// block (wait for writability).
    pub(crate) fn flush<S: WritevSink>(&mut self, sink: &mut S) -> io::Result<(usize, bool)> {
        let mut total = 0usize;
        loop {
            if self.queued == 0 {
                return Ok((total, true));
            }
            let mut bufs: Vec<&[u8]> = Vec::with_capacity(self.segs.len().min(sys::MAX_IOVECS));
            for (i, seg) in self.segs.iter().take(sys::MAX_IOVECS).enumerate() {
                if i == 0 {
                    bufs.push(&seg[self.front_pos..]);
                } else {
                    bufs.push(seg);
                }
            }
            match sink.writev(&bufs) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "peer stopped accepting bytes",
                    ))
                }
                Ok(n) => {
                    total += n;
                    self.advance(n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok((total, false)),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Consumes `n` written bytes off the front of the queue, freeing
    /// fully-sent segments.
    fn advance(&mut self, mut n: usize) {
        debug_assert!(n <= self.queued);
        self.queued -= n;
        while n > 0 {
            let front_len = self.segs[0].len() - self.front_pos;
            if n >= front_len {
                n -= front_len;
                self.segs.pop_front();
                self.front_pos = 0;
            } else {
                self.front_pos += n;
                n = 0;
            }
        }
    }
}

// --- the reactor ------------------------------------------------------------

const LISTENER_TOKEN: u64 = 0;
const WAKER_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Upper bound on one poll sleep even with no deadlines: a lost wakeup
/// (which should never happen) degrades to 1 s of latency, not a hang.
const MAX_POLL: Duration = Duration::from_secs(1);

/// A finished dispatch travelling from a pool worker back to its loop.
/// The response rides as the segments the worker produced (prefix +
/// payload for framed; one segment for HTTP) and is reassembled by the
/// loop's `writev`.
struct Completion {
    token: u64,
    segs: Vec<Vec<u8>>,
    close: bool,
}

/// Worker-side half of one loop's completion channel.
struct DispatchQueue {
    completions: Mutex<Vec<Completion>>,
    waker: Arc<Waker>,
}

impl DispatchQueue {
    fn complete(&self, completion: Completion) {
        self.completions
            .lock()
            .expect("completion lock")
            .push(completion);
        self.waker.wake();
    }

    fn take(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.lock().expect("completion lock"))
    }

    fn is_empty(&self) -> bool {
        self.completions.lock().expect("completion lock").is_empty()
    }
}

/// Accepted sockets in transit from loop 0 to a peer loop (the
/// fd-handoff fallback where `SO_REUSEPORT` is unavailable: poll
/// backend, non-Linux, or a bind that refused the group).
struct Inbox {
    streams: Mutex<Vec<(TcpStream, SocketAddr)>>,
    /// The owning loop's waker: a handoff must interrupt its poll.
    waker: Arc<Waker>,
}

impl Inbox {
    fn push(&self, stream: TcpStream, peer: SocketAddr) {
        self.streams
            .lock()
            .expect("inbox lock")
            .push((stream, peer));
        self.waker.wake();
    }

    fn take(&self) -> Vec<(TcpStream, SocketAddr)> {
        std::mem::take(&mut *self.streams.lock().expect("inbox lock"))
    }

    fn is_empty(&self) -> bool {
        self.streams.lock().expect("inbox lock").is_empty()
    }
}

/// One owned connection.
struct Conn {
    stream: TcpStream,
    machine: Machine,
    out: WriteQueue,
    close_after_write: bool,
    /// A request is at a pool worker; reads pause until its response.
    dispatching: bool,
    last_activity: Instant,
    interest: Interest,
    /// The `/debug/conns` entry; updates are relaxed atomics, so
    /// mirroring costs the loop nothing observable.
    track: Arc<ConnTrack>,
}

impl Conn {
    fn has_pending_write(&self) -> bool {
        !self.out.is_empty()
    }

    /// Mirrors this connection's coarse state (sniffed protocol and
    /// buffered-byte count) into its conntrack entry for `/debug/conns`.
    fn mirror(&self) {
        if let Some(protocol) = self.machine.protocol {
            self.track.set_protocol(protocol == Protocol::Framed);
        }
        self.track
            .set_buffered((self.machine.raw_buffered() + self.out.queued()) as u64);
        let state = if self.dispatching {
            ConnState::Dispatching
        } else if self.has_pending_write() {
            ConnState::Writing
        } else if self.machine.has_partial() {
            ConnState::Reading
        } else if self.machine.protocol.is_none() {
            ConnState::Sniffing
        } else {
            ConnState::Idle
        };
        self.track.set_state(state);
    }

    /// Idle = safe to evict: between requests with nothing in flight.
    fn is_idle(&self) -> bool {
        !self.dispatching && !self.has_pending_write() && !self.machine.has_partial()
    }

    /// The readiness this connection currently needs. Read interest
    /// drops while a dispatch is in flight, while closing, and — the
    /// backpressure half — while queued output sits at or above the
    /// write watermark (a peer that is not draining responses must not
    /// grow our memory); level-triggered polling re-reports buffered
    /// input the moment interest returns.
    fn wanted_interest(&self, watermark: usize) -> Interest {
        Interest {
            read: !self.dispatching && !self.close_after_write && self.out.queued() < watermark,
            write: self.has_pending_write(),
        }
    }

    /// When this connection should be given up on, given its state.
    fn deadline(
        &self,
        read_timeout: Option<Duration>,
        write_timeout: Option<Duration>,
        idle_timeout: Option<Duration>,
    ) -> Option<Instant> {
        if self.has_pending_write() {
            write_timeout.map(|t| self.last_activity + t)
        } else if self.dispatching {
            None // bounded by the dispatch itself
        } else if self.machine.has_partial() {
            read_timeout.map(|t| self.last_activity + t)
        } else {
            idle_timeout.map(|t| self.last_activity + t)
        }
    }

    fn queue_write(&mut self, bytes: Vec<u8>) {
        self.out.push(bytes);
    }
}

struct Reactor {
    shared: Arc<Shared>,
    loop_id: usize,
    poller: Poller,
    /// This loop's own listener (reuseport: every loop; handoff: loop 0
    /// only — its peers accept through their inbox instead).
    listener: Option<TcpListener>,
    waker: Arc<Waker>,
    pool: Arc<ThreadPool>,
    /// Loops still running; the last one out shuts the pool down.
    live_loops: Arc<AtomicUsize>,
    dispatch: Arc<DispatchQueue>,
    /// Handoff mode, loops ≥ 1: sockets loop 0 accepted for us.
    inbox: Option<Arc<Inbox>>,
    /// Handoff mode, loop 0: the peers' inboxes, fed round-robin.
    peers: Vec<Arc<Inbox>>,
    /// Round-robin cursor over `[self, peers...]`.
    rr: usize,
    /// Jobs the bounded pool queue rejected; retried on completions.
    parked_jobs: VecDeque<Job>,
    /// This loop's last contribution to the parked-jobs gauge (the
    /// gauge is a cross-loop sum, so updates must be deltas).
    noted_parked: usize,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// This loop's slice of `max_connections`.
    budget: usize,
    accepting: bool,
    loop_metrics: LoopMetrics,
}

/// Spawns the reactor loops. `listeners` is either one listener (shared
/// via fd handoff) or one pre-bound `SO_REUSEPORT` listener per loop;
/// all must already be non-blocking.
pub(crate) fn spawn(
    shared: Arc<Shared>,
    listeners: Vec<TcpListener>,
) -> io::Result<Vec<JoinHandle<()>>> {
    let n = shared.config.reactors.max(1);
    let pool = Arc::new(ThreadPool::new(
        shared.config.workers,
        shared.config.queue_capacity,
    ));
    shared.set_pool_depth(pool.depth_probe());
    let live_loops = Arc::new(AtomicUsize::new(n));
    let max_conns = shared.config.max_connections.max(1);

    // Every loop gets a waker up front so `trigger_shutdown` can
    // interrupt all of them, and so loop 0 can poke a peer's inbox.
    let mut wakers = Vec::with_capacity(n);
    for _ in 0..n {
        let waker = Arc::new(Waker::new()?);
        shared.add_waker(Arc::clone(&waker));
        wakers.push(waker);
    }
    let handoff = listeners.len() < n;
    let inboxes: Vec<Arc<Inbox>> = if handoff {
        (1..n)
            .map(|i| {
                Arc::new(Inbox {
                    streams: Mutex::new(Vec::new()),
                    waker: Arc::clone(&wakers[i]),
                })
            })
            .collect()
    } else {
        Vec::new()
    };

    let backend = if shared.config.force_poll_backend {
        Backend::Poll
    } else {
        Backend::Auto
    };
    let mut listeners = listeners.into_iter();
    let mut reactors = Vec::with_capacity(n);
    for (loop_id, waker) in wakers.into_iter().enumerate() {
        let mut poller = Poller::with_backend(backend)?;
        let listener = listeners.next();
        if let Some(listener) = &listener {
            poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
        }
        poller.register(waker.read_fd(), WAKER_TOKEN, Interest::READ)?;
        let dispatch = Arc::new(DispatchQueue {
            completions: Mutex::new(Vec::new()),
            waker: Arc::clone(&waker),
        });
        // Split the connection cap evenly; loop 0 takes the remainder.
        let budget = (max_conns / n + if loop_id == 0 { max_conns % n } else { 0 }).max(1);
        let loop_metrics = LoopMetrics::register(shared.dispatcher.telemetry().registry(), loop_id);
        let accepting = listener.is_some();
        reactors.push(Reactor {
            shared: Arc::clone(&shared),
            loop_id,
            poller,
            listener,
            waker,
            pool: Arc::clone(&pool),
            live_loops: Arc::clone(&live_loops),
            dispatch,
            inbox: if handoff && loop_id > 0 {
                Some(Arc::clone(&inboxes[loop_id - 1]))
            } else {
                None
            },
            peers: if handoff && loop_id == 0 {
                inboxes.clone()
            } else {
                Vec::new()
            },
            rr: 0,
            parked_jobs: VecDeque::new(),
            noted_parked: 0,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            budget,
            accepting,
            loop_metrics,
        });
    }
    let mut handles = Vec::with_capacity(n);
    for reactor in reactors {
        handles.push(
            std::thread::Builder::new()
                .name(format!("pclabel-net-reactor-{}", reactor.loop_id))
                .spawn(move || reactor.run())?,
        );
    }
    Ok(handles)
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut busy_since = Instant::now();
        loop {
            self.process_inbox();
            self.process_completions();
            self.expire_deadlines();
            if self.shared.shutting_down() {
                self.shed_for_drain();
                if self.drained() {
                    break;
                }
            }
            let timeout = self.next_timeout();
            // How long this wakeup kept the loop thread busy — the
            // latency every other ready connection on it waited through.
            self.loop_metrics
                .busy
                .observe(busy_since.elapsed().as_secs_f64());
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                break; // fatal poller failure: drop everything
            }
            busy_since = Instant::now();
            // `events` is a local, so iterating it does not conflict
            // with the handlers' `&mut self`; the buffer (and its
            // capacity) is reused by the next wait.
            for &event in &events {
                match event.token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => self.waker.drain(),
                    token => self.conn_ready(token, event),
                }
            }
        }
        // The last loop out shuts the shared pool down; workers may
        // still be running dispatches for connections that are already
        // gone, and they finish cleanly.
        if self.live_loops.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.pool.shutdown();
        }
    }

    /// No work can ever arrive again once shutdown has shed idle
    /// connections and this loop's in-flight pipeline is empty.
    fn drained(&self) -> bool {
        self.conns.is_empty()
            && self.parked_jobs.is_empty()
            && self.dispatch.is_empty()
            && self.inbox.as_ref().is_none_or(|inbox| inbox.is_empty())
    }

    /// The nearest connection deadline, clamped to [0, MAX_POLL].
    fn next_timeout(&self) -> Duration {
        let now = Instant::now();
        let config = &self.shared.config;
        self.conns
            .values()
            .filter_map(|c| {
                c.deadline(
                    config.read_timeout,
                    config.write_timeout,
                    config.idle_timeout,
                )
            })
            .map(|deadline| deadline.saturating_duration_since(now))
            .min()
            .map_or(MAX_POLL, |d| d.min(MAX_POLL))
    }

    // --- accepting ---------------------------------------------------------

    /// Adopts sockets loop 0 accepted on this loop's behalf (handoff
    /// mode only).
    fn process_inbox(&mut self) {
        let handed = match &self.inbox {
            Some(inbox) => inbox.take(),
            None => return,
        };
        for (stream, peer) in handed {
            self.admit(stream, peer);
        }
    }

    fn accept_ready(&mut self) {
        if !self.accepting {
            return;
        }
        loop {
            let accepted = match &self.listener {
                Some(listener) => sys::accept_nonblocking(listener),
                None => return,
            };
            match accepted {
                Ok(Some((stream, peer))) => {
                    self.shared.metrics.accepts.inc();
                    // Reuseport mode: `peers` is empty and every socket
                    // is ours. Handoff mode: deal round-robin across
                    // [self, peers...] so the fleet stays balanced.
                    let total = self.peers.len() + 1;
                    let target = self.rr % total;
                    self.rr = self.rr.wrapping_add(1);
                    if target == 0 {
                        self.admit(stream, peer);
                    } else {
                        self.peers[target - 1].push(stream, peer);
                    }
                }
                Ok(None) => break,
                // Persistent accept failure (EMFILE, aborted handshake):
                // the listener stays level-triggered-readable, so a bare
                // break would re-poll instantly and livelock the loop at
                // 100% CPU. Back off briefly, like the pool acceptor —
                // a bounded stall beats a spin; connection I/O resumes
                // right after.
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(10));
                    break;
                }
            }
        }
    }

    fn admit(&mut self, stream: TcpStream, peer: SocketAddr) {
        if self.shared.shutting_down() {
            return; // drop: no new work during drain
        }
        if self.conns.len() >= self.budget {
            // Evict the least-recently-active idle connection; if every
            // connection is mid-request, refuse the newcomer instead.
            let lru = self
                .conns
                .iter()
                .filter(|(_, c)| c.is_idle())
                .min_by_key(|(_, c)| c.last_activity)
                .map(|(&token, _)| token);
            match lru {
                Some(token) => {
                    self.shared.metrics.evictions.inc();
                    self.close(token);
                }
                None => return,
            }
        }
        // `accept4` (or the accept fallback) already made it
        // non-blocking; only Nagle needs switching off.
        let _ = stream.set_nodelay(true);
        let token = self.next_token;
        self.next_token += 1;
        let conn = Conn {
            stream,
            machine: Machine::new(self.shared.config.max_frame),
            out: WriteQueue::new(),
            close_after_write: false,
            dispatching: false,
            last_activity: Instant::now(),
            interest: Interest::READ,
            track: self.shared.conns.register(peer.to_string()),
        };
        if self
            .poller
            .register(conn.stream.as_raw_fd(), token, Interest::READ)
            .is_ok()
        {
            self.conns.insert(token, conn);
            // Deltas, not `set`: the gauge sums every loop's slice.
            self.shared.metrics.open_connections.inc();
            self.loop_metrics
                .open_connections
                .set(self.conns.len() as u64);
        } else {
            self.shared.conns.deregister(conn.track.id());
        }
    }

    // --- per-connection readiness -------------------------------------------

    fn conn_ready(&mut self, token: u64, event: Event) {
        let Some(conn) = self.conns.get(&token) else {
            return; // already closed this batch
        };
        // A true hangup (ERR/HUP — both directions dead, unmaskable
        // under both backends) on a connection that is not reading
        // would otherwise be re-reported every iteration: close now.
        // Half-closes arrive as `readable` and take the EOF path below.
        if event.hangup && (conn.dispatching || conn.close_after_write) {
            // An in-flight dispatch's response is undeliverable; the
            // completion handler tolerates the missing connection.
            self.close(token);
            return;
        }
        if event.writable && conn.has_pending_write() {
            self.flush(token);
            // Reading pauses while responses are stuck (see read_ready);
            // now that the peer drained them, pipelined requests still
            // sitting in the machine's buffer can continue without
            // waiting for new bytes to arrive.
            if let Some(conn) = self.conns.get_mut(&token) {
                if !conn.dispatching
                    && !conn.close_after_write
                    && !conn.has_pending_write()
                    && !conn.machine.is_paused()
                    && conn.machine.has_partial()
                {
                    self.pump(token);
                }
            }
        }
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        if event.readable || event.hangup {
            if conn.dispatching || conn.close_after_write {
                return; // not reading right now (interest excludes it)
            }
            self.read_ready(token);
        }
    }

    fn read_ready(&mut self, token: u64) {
        let watermark = self.shared.config.write_watermark.max(1);
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.out.queued() >= watermark {
                // The peer is not draining responses (a flood of
                // pipelined requests, or overload rejections that answer
                // without occupying a worker): stop consuming input so
                // buffered output stays bounded by the watermark plus
                // one read chunk. The interest update below drops read
                // interest until the queue drains.
                break;
            }
            let mut chunk = [0u8; 8192];
            match conn.stream.read(&mut chunk) {
                // EOF: between requests it is a clean close; inside one
                // it aborts, matching the blocking model.
                Ok(0) => {
                    self.close(token);
                    return;
                }
                Ok(n) => {
                    conn.machine.push(&chunk[..n]);
                    conn.track.add_in(n as u64);
                    conn.last_activity = Instant::now();
                    self.pump(token);
                    let Some(conn) = self.conns.get(&token) else {
                        return;
                    };
                    if conn.dispatching || conn.close_after_write {
                        break; // request in flight: stop consuming input
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
        self.update_interest(token);
    }

    /// Runs the machine over buffered bytes until it needs more input,
    /// dispatches a request, or errors out. Overload rejections are
    /// handled *inside* this loop (queue the error, re-arm the machine,
    /// keep pumping): recursing through `flush` instead would nest one
    /// stack frame per pipelined request in the buffer, and a client can
    /// pipeline thousands of tiny requests into one read chunk.
    fn pump(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            match conn.machine.next() {
                Step::NeedMore => break,
                Step::SendContinue => {
                    conn.queue_write(http::CONTINUE.to_vec());
                    continue;
                }
                Step::FramedRequest(payload) => {
                    if self.dispatch_framed(token, payload) {
                        break;
                    }
                    // Rejected (overload): the error response is queued
                    // and the connection is not dispatching; re-arm for
                    // the next buffered request.
                    let Some(conn) = self.conns.get_mut(&token) else {
                        return;
                    };
                    conn.machine.resume();
                }
                Step::HttpRequest(request) => {
                    if self.dispatch_http(token, request) {
                        break;
                    }
                    let Some(conn) = self.conns.get_mut(&token) else {
                        return;
                    };
                    if conn.close_after_write {
                        break; // non-keep-alive 429: stop reading
                    }
                    conn.machine.resume();
                }
                Step::Oversized(oversize) => {
                    let bytes = oversize_response(oversize);
                    conn.queue_write(bytes);
                    conn.close_after_write = true;
                    break;
                }
                Step::HttpError { status, message } => {
                    let bytes = http::response_bytes(status, &http::error_body(message), false);
                    conn.queue_write(bytes);
                    conn.close_after_write = true;
                    break;
                }
            }
        }
        self.flush(token);
    }

    // --- dispatching --------------------------------------------------------

    /// `true` = the request reached the pool (or parked); `false` = it
    /// was refused for overload and the framed error response is queued
    /// (the request was consumed, so the stream stays in sync and the
    /// connection stays usable — the caller re-arms and keeps pumping).
    fn dispatch_framed(&mut self, token: u64, payload: Vec<u8>) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            return true;
        };
        conn.dispatching = true;
        conn.track.inc_requests();
        let shared = Arc::clone(&self.shared);
        let queue = Arc::clone(&self.dispatch);
        let job: Job = Box::new(move || {
            let (response, shutdown) = match std::str::from_utf8(&payload) {
                Ok(line) => process_line(line, &shared),
                Err(_) => (utf8_error_json(), false),
            };
            // Responses are always sent whole, even above the request
            // cap (same as the blocking model). The length prefix and
            // payload travel as two segments stitched back together by
            // one `writev` on the loop — byte-identical to the old
            // concatenated path, without the copy. Past
            // MAX_FRAME_CEILING (where `encode_frame` would refuse),
            // closing is all that is left.
            let body = response.to_string().into_bytes();
            let (segs, broken) = match u32::try_from(body.len()) {
                Ok(len) if len <= crate::frame::MAX_FRAME_CEILING => {
                    (vec![len.to_be_bytes().to_vec(), body], false)
                }
                _ => (Vec::new(), true),
            };
            let close = shutdown || broken || shared.shutting_down();
            queue.complete(Completion { token, segs, close });
        });
        if self.try_submit(job) {
            return true;
        }
        // Pool queue and parking lot both full: answer the backpressure
        // error ourselves.
        let bytes = encode_frame(
            overloaded_error_json().to_string().as_bytes(),
            crate::frame::MAX_FRAME_CEILING,
        )
        .expect("overload frame is tiny");
        self.reject_overloaded(token, bytes, false);
        false
    }

    /// Same contract as [`Reactor::dispatch_framed`]; a rejected
    /// non-keep-alive request additionally sets `close_after_write`.
    fn dispatch_http(&mut self, token: u64, request: Box<http::Request>) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            return true;
        };
        conn.dispatching = true;
        conn.track.inc_requests();
        // Captured before the job takes the request: the 429 path needs
        // to know whether this exchange would have kept the connection.
        let keep_alive_on_reject = request.keep_alive();
        let shared = Arc::clone(&self.shared);
        let queue = Arc::clone(&self.dispatch);
        let job: Job = Box::new(move || {
            let routed = http::route(&request, &shared);
            let keep_alive = request.keep_alive() && !routed.shutdown && !shared.shutting_down();
            let bytes = http::routed_bytes(&routed, keep_alive);
            queue.complete(Completion {
                token,
                segs: vec![bytes],
                close: !keep_alive,
            });
        });
        if self.try_submit(job) {
            return true;
        }
        let body = overloaded_error_json().to_string();
        let bytes = http::response_bytes(429, &body, keep_alive_on_reject);
        self.reject_overloaded(token, bytes, !keep_alive_on_reject);
        false
    }

    /// Hands a job to the pool, parking it if the queue is full and the
    /// parking lot is under [`ServerConfig::max_parked`]. `false` = both
    /// are full; the caller must answer the overload itself.
    ///
    /// [`ServerConfig::max_parked`]: crate::server::ServerConfig::max_parked
    fn try_submit(&mut self, job: Job) -> bool {
        match self.pool.try_execute(job) {
            Ok(()) => true,
            // Queue full: park it if the lot has room. Every completion
            // frees a slot, so the retry in process_completions always
            // makes progress.
            Err(TryExecuteError::Full(job)) => {
                if self.parked_jobs.len() < self.shared.config.max_parked {
                    self.parked_jobs.push_back(job);
                    self.note_parked();
                    true
                } else {
                    false
                }
            }
            Err(TryExecuteError::Closed(_)) => true, // shutting down: drop
        }
    }

    /// Queues a backpressure error for a request that never reached the
    /// pool. Deliberately does NOT flush or resume: the pump loop the
    /// rejection happened under continues iteratively and flushes once
    /// at its end (no recursion per pipelined request).
    fn reject_overloaded(&mut self, token: u64, bytes: Vec<u8>, close: bool) {
        self.shared.metrics.overloaded.inc();
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.dispatching = false;
        conn.close_after_write |= close;
        conn.queue_write(bytes);
        conn.last_activity = Instant::now();
    }

    fn process_completions(&mut self) {
        let completions = self.dispatch.take();
        let had_completions = !completions.is_empty();
        for completion in completions {
            // The connection may be gone (write-timeout abort while its
            // dispatch ran): drop the orphaned response.
            let Some(conn) = self.conns.get_mut(&completion.token) else {
                continue;
            };
            conn.dispatching = false;
            conn.close_after_write |= completion.close;
            for seg in completion.segs {
                conn.out.push(seg);
            }
            conn.last_activity = Instant::now();
            self.flush(completion.token);
        }
        if had_completions {
            while let Some(job) = self.parked_jobs.pop_front() {
                match self.pool.try_execute(job) {
                    Ok(()) => {}
                    Err(TryExecuteError::Full(job)) => {
                        self.parked_jobs.push_front(job);
                        break;
                    }
                    Err(TryExecuteError::Closed(_)) => {
                        self.parked_jobs.clear();
                        break;
                    }
                }
            }
            self.note_parked();
        }
    }

    /// Mirrors this loop's parking-lot depth into the shared gauge.
    /// The gauge is a sum across loops, so the update is the delta
    /// against what this loop last reported, never an absolute `set`.
    fn note_parked(&mut self) {
        let now = self.parked_jobs.len();
        for _ in self.noted_parked..now {
            self.shared.metrics.parked_jobs.inc();
        }
        for _ in now..self.noted_parked {
            self.shared.metrics.parked_jobs.dec();
        }
        self.noted_parked = now;
    }

    // --- writing ------------------------------------------------------------

    /// Pushes pending output via `writev`; on completion either closes
    /// or re-arms the machine for the next (possibly already-buffered)
    /// request.
    fn flush(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.has_pending_write() {
            match conn.out.flush(&mut StreamSink(&conn.stream)) {
                Ok((written, done)) => {
                    if written > 0 {
                        conn.track.add_out(written as u64);
                        conn.last_activity = Instant::now();
                    }
                    if !done {
                        self.update_interest(token);
                        return; // short write: wait for writability
                    }
                }
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.close_after_write && !conn.has_pending_write() {
            self.close(token);
            return;
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if !conn.dispatching && conn.machine.is_paused() {
            // Response fully written: next request. Pipelined bytes may
            // already be buffered, so pump before waiting on the socket.
            conn.machine.resume();
            self.pump(token);
        }
        self.update_interest(token);
    }

    // --- deadlines & shutdown ----------------------------------------------

    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        let config = &self.shared.config;
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter_map(|(&token, c)| {
                c.deadline(
                    config.read_timeout,
                    config.write_timeout,
                    config.idle_timeout,
                )
                .filter(|&deadline| now >= deadline)
                .map(|_| token)
            })
            .collect();
        for token in expired {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            // A stalled oversize drain still gets its error response
            // (bounded by write_timeout), like the blocking model's
            // timeout-bounded drain; everything else is aborted.
            if let Some(oversize) = conn.machine.abandon_drain() {
                let bytes = oversize_response(oversize);
                conn.queue_write(bytes);
                conn.close_after_write = true;
                conn.last_activity = now;
                self.flush(token);
            } else {
                self.close(token);
            }
        }
    }

    /// On shutdown: stop accepting and close every connection that is
    /// not owed a response; dispatching/writing connections drain.
    fn shed_for_drain(&mut self) {
        if self.accepting {
            if let Some(listener) = &self.listener {
                let _ = self.poller.deregister(listener.as_raw_fd());
            }
            self.accepting = false;
        }
        let doomed: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| !c.dispatching && !c.has_pending_write())
            .map(|(&token, _)| token)
            .collect();
        for token in doomed {
            self.close(token);
        }
    }

    // --- bookkeeping --------------------------------------------------------

    fn update_interest(&mut self, token: u64) {
        let watermark = self.shared.config.write_watermark.max(1);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.mirror();
        let wanted = conn.wanted_interest(watermark);
        if wanted != conn.interest {
            let fd = conn.stream.as_raw_fd();
            if self.poller.modify(fd, token, wanted).is_ok() {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.interest = wanted;
                }
            }
        }
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.shared.conns.deregister(conn.track.id());
            // Deltas, not `set`: the gauge sums every loop's slice.
            self.shared.metrics.open_connections.dec();
            self.loop_metrics
                .open_connections
                .set(self.conns.len() as u64);
            // `conn.stream` drops here, closing the socket.
        }
    }
}

/// The error response for an oversized request, per protocol — the same
/// bytes the blocking model produces.
fn oversize_response(oversize: Oversize) -> Vec<u8> {
    match oversize {
        Oversize::Frame { len, max } => encode_frame(
            oversize_error_json(len, max).to_string().as_bytes(),
            crate::frame::MAX_FRAME_CEILING,
        )
        .expect("error frame is tiny"),
        Oversize::HttpBody => http::response_bytes(
            413,
            &http::error_body("request body exceeds the frame size limit"),
            false,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // -- Machine: framed protocol, partial reads ----------------------------

    /// Feeds `wire` to a fresh machine in `chunk`-byte slices and
    /// returns every non-NeedMore step, resuming after each request.
    fn run_chunked(wire: &[u8], chunk: usize, max_frame: u32) -> Vec<String> {
        let mut machine = Machine::new(max_frame);
        let mut steps = Vec::new();
        for piece in wire.chunks(chunk.max(1)) {
            machine.push(piece);
            loop {
                match machine.next() {
                    Step::NeedMore => break,
                    Step::FramedRequest(payload) => {
                        steps.push(format!("frame:{}", String::from_utf8_lossy(&payload)));
                        machine.resume();
                    }
                    Step::HttpRequest(request) => {
                        steps.push(format!(
                            "http:{} {} body:{}",
                            request.method,
                            request.target,
                            String::from_utf8_lossy(&request.body)
                        ));
                        machine.resume();
                    }
                    Step::SendContinue => steps.push("continue".to_string()),
                    Step::Oversized(Oversize::Frame { len, max }) => {
                        steps.push(format!("oversized-frame:{len}>{max}"));
                    }
                    Step::Oversized(Oversize::HttpBody) => {
                        steps.push("oversized-http".to_string());
                    }
                    Step::HttpError { status, .. } => {
                        steps.push(format!("http-error:{status}"));
                    }
                }
            }
        }
        steps
    }

    fn framed_wire(payloads: &[&str]) -> Vec<u8> {
        let mut wire = Vec::new();
        for p in payloads {
            wire.extend_from_slice(&encode_frame(p.as_bytes(), u32::MAX >> 4).unwrap());
        }
        wire
    }

    #[test]
    fn frame_split_across_wakeups_byte_at_a_time() {
        let wire = framed_wire(&[r#"{"op":"list"}"#, r#"{"op":"health"}"#]);
        // Every chunking of the same wire bytes yields the same requests.
        for chunk in [1, 2, 3, 5, wire.len()] {
            assert_eq!(
                run_chunked(&wire, chunk, 1 << 20),
                vec![
                    r#"frame:{"op":"list"}"#.to_string(),
                    r#"frame:{"op":"health"}"#.to_string()
                ],
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn frame_header_split_mid_length_prefix() {
        let wire = framed_wire(&["abc"]);
        let mut machine = Machine::new(1 << 20);
        machine.push(&wire[..2]); // half the length prefix
        assert!(matches!(machine.next(), Step::NeedMore));
        assert!(machine.has_partial(), "half a prefix counts as partial");
        machine.push(&wire[2..5]); // rest of prefix + 1 payload byte
        assert!(matches!(machine.next(), Step::NeedMore));
        assert!(machine.has_partial(), "mid-frame must count as partial");
        machine.push(&wire[5..]);
        match machine.next() {
            Step::FramedRequest(p) => assert_eq!(p, b"abc"),
            _ => panic!("expected a complete frame"),
        }
        assert!(machine.is_paused());
    }

    #[test]
    fn oversized_frame_drains_then_errors() {
        let mut wire = 100u32.to_be_bytes().to_vec();
        wire.extend_from_slice(&[0x55; 100]);
        let steps = run_chunked(&wire, 7, 10);
        assert_eq!(steps, vec!["oversized-frame:100>10".to_string()]);

        // Abandoning a stalled drain still yields the error.
        let mut machine = Machine::new(10);
        machine.push(&wire[..50]);
        assert!(matches!(machine.next(), Step::NeedMore));
        assert_eq!(
            machine.abandon_drain(),
            Some(Oversize::Frame { len: 100, max: 10 })
        );
    }

    // -- Machine: HTTP, partial reads ---------------------------------------

    #[test]
    fn http_request_delivered_one_byte_at_a_time() {
        let wire =
            b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        for chunk in [1usize, 3, wire.len()] {
            assert_eq!(
                run_chunked(wire, chunk, 1 << 20),
                vec![
                    "http:POST /query body:{\"a\":1}".to_string(),
                    "http:GET /healthz body:".to_string(),
                ],
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn http_expect_continue_interim_then_body() {
        let head =
            b"POST / HTTP/1.1\r\nHost: x\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\n";
        let mut machine = Machine::new(1 << 20);
        machine.push(head);
        assert!(matches!(machine.next(), Step::SendContinue));
        assert!(matches!(machine.next(), Step::NeedMore));
        assert!(machine.has_partial());
        machine.push(b"ok");
        match machine.next() {
            Step::HttpRequest(r) => assert_eq!(r.body, b"ok"),
            _ => panic!("expected the buffered request"),
        }
        // Body already buffered with the head: no interim response,
        // matching the blocking adapter.
        let mut machine = Machine::new(1 << 20);
        machine.push(head);
        machine.push(b"ok");
        assert!(matches!(machine.next(), Step::HttpRequest(_)));
    }

    // -- Machine: chunked transfer encoding ---------------------------------

    #[test]
    fn http_chunked_body_assembled_at_any_chunking() {
        let wire = b"POST /query HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n\
                     4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n\
                     GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        for chunk in [1usize, 3, 7, wire.len()] {
            assert_eq!(
                run_chunked(wire, chunk, 1 << 20),
                vec![
                    "http:POST /query body:Wikipedia".to_string(),
                    "http:GET /healthz body:".to_string(),
                ],
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn http_chunked_expect_continue_always_interim_first() {
        // A chunked body has no length to pre-buffer, so the interim
        // response precedes it even when the whole body arrived with
        // the head (matching the blocking adapter).
        let wire = b"POST / HTTP/1.1\r\nHost: x\r\nExpect: 100-continue\r\n\
                     Transfer-Encoding: chunked\r\n\r\n2\r\nok\r\n0\r\n\r\n";
        let mut machine = Machine::new(1 << 20);
        machine.push(wire);
        assert!(matches!(machine.next(), Step::SendContinue));
        match machine.next() {
            Step::HttpRequest(r) => assert_eq!(r.body, b"ok"),
            _ => panic!("expected the chunked request after the interim"),
        }
    }

    #[test]
    fn http_chunked_oversize_is_413_and_terminal() {
        // Declared chunk sizes exceeding max_frame fail at the size
        // line, before the data is buffered.
        let mut machine = Machine::new(8);
        machine.push(b"POST / HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n40\r\n");
        assert!(matches!(
            machine.next(),
            Step::HttpError { status: 413, .. }
        ));
        assert!(!machine.has_partial(), "terminal error: connection closes");
    }

    #[test]
    fn http_chunked_incremental_decode_keeps_raw_buffer_small() {
        // The raw buffer holds only undecoded wire bytes: decoded
        // chunks move out as they complete, so a big streamed body
        // never accumulates in `buf` the way a Content-Length body
        // must.
        let mut machine = Machine::new(1 << 20);
        machine.push(b"POST / HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n");
        assert!(matches!(machine.next(), Step::NeedMore));
        let mut total = 0usize;
        for _ in 0..64 {
            machine.push(b"400\r\n");
            machine.push(&[b'z'; 0x400]);
            machine.push(b"\r\n");
            total += 0x400;
            assert!(matches!(machine.next(), Step::NeedMore));
            assert!(
                machine.raw_buffered() < 64,
                "decoded chunks must leave the raw buffer (len {})",
                machine.raw_buffered()
            );
        }
        machine.push(b"0\r\n\r\n");
        match machine.next() {
            Step::HttpRequest(r) => assert_eq!(r.body.len(), total),
            _ => panic!("expected the assembled chunked request"),
        }
    }

    #[test]
    fn http_malformed_and_oversized_requests() {
        // Missing parts of the request line.
        let mut machine = Machine::new(1 << 20);
        machine.push(b"GET \r\n\r\n");
        assert!(matches!(
            machine.next(),
            Step::HttpError { status: 400, .. }
        ));

        // Head too large.
        let mut machine = Machine::new(1 << 20);
        machine.push(b"GET / HTTP/1.1\r\n");
        machine.push(&vec![b'a'; http::MAX_HEAD_BYTES + 1]);
        assert!(matches!(
            machine.next(),
            Step::HttpError { status: 431, .. }
        ));

        // Transfer-encodings other than chunked are unimplemented.
        let mut machine = Machine::new(1 << 20);
        machine.push(b"POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n");
        assert!(matches!(
            machine.next(),
            Step::HttpError { status: 501, .. }
        ));

        // Body above the frame cap: drain the declared body, then 413.
        let mut machine = Machine::new(16);
        machine.push(b"POST / HTTP/1.1\r\nContent-Length: 40\r\n\r\n");
        machine.push(&[b'x'; 25]);
        assert!(matches!(machine.next(), Step::NeedMore));
        machine.push(&[b'x'; 15]);
        assert!(matches!(
            machine.next(),
            Step::Oversized(Oversize::HttpBody)
        ));
    }

    #[test]
    fn sniff_locks_the_protocol_once() {
        // Framed first: later prologues are lengths even if they look
        // like ASCII.
        let mut machine = Machine::new(1 << 20);
        let mut wire = framed_wire(&["x"]);
        wire.extend_from_slice(&5u32.to_be_bytes());
        wire.extend_from_slice(b"hello");
        machine.push(&wire);
        assert!(matches!(machine.next(), Step::FramedRequest(_)));
        machine.resume();
        match machine.next() {
            Step::FramedRequest(p) => assert_eq!(p, b"hello"),
            _ => panic!("second frame"),
        }
    }

    // -- write path: the vectored queue under short writes ------------------

    /// A sink that accepts at most `per_call` bytes per `writev`, then
    /// signals WouldBlock every other call — a worst-case slow peer.
    struct Throttled {
        accepted: Vec<u8>,
        per_call: usize,
        block_next: bool,
    }

    impl WritevSink for Throttled {
        fn writev(&mut self, bufs: &[&[u8]]) -> io::Result<usize> {
            if self.block_next {
                self.block_next = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "slow peer"));
            }
            self.block_next = true;
            let mut room = self.per_call;
            let mut written = 0usize;
            for buf in bufs {
                if room == 0 {
                    break;
                }
                let take = buf.len().min(room);
                self.accepted.extend_from_slice(&buf[..take]);
                written += take;
                room -= take;
            }
            Ok(written)
        }
    }

    /// Drains `queue` through `sink`, simulating the reactor's
    /// wait-for-writability loop; panics if no progress is made.
    fn drain_queue(queue: &mut WriteQueue, sink: &mut Throttled) {
        let mut rounds = 0usize;
        loop {
            match queue.flush(sink).unwrap() {
                (_, true) => break,
                (_, false) => {
                    rounds += 1; // reactor would wait for writability here
                    assert!(rounds < 100_000, "no progress");
                }
            }
        }
    }

    #[test]
    fn short_writes_of_a_segmented_response_complete_incrementally() {
        let segments: Vec<Vec<u8>> = vec![
            (0..u8::MAX).cycle().take(4).collect(),
            (0..u8::MAX).cycle().take(5_000).collect(),
            vec![0xAB; 1],
            (0..u8::MAX).cycle().take(4_995).collect(),
        ];
        let expected: Vec<u8> = segments.iter().flatten().copied().collect();
        // Split at every size from 1 byte per call upward: covers
        // 1-byte writes, every iovec boundary, straddles, and whole-
        // queue writes.
        for per_call in [1usize, 3, 4, 5, 9, 333, 5_004, 10_000, 20_000] {
            let mut queue = WriteQueue::new();
            for seg in &segments {
                queue.push(seg.clone());
            }
            assert_eq!(queue.queued(), expected.len());
            let mut sink = Throttled {
                accepted: Vec::new(),
                per_call,
                block_next: false,
            };
            drain_queue(&mut queue, &mut sink);
            assert_eq!(sink.accepted, expected, "per_call {per_call}");
            assert!(queue.is_empty());
            assert_eq!(queue.queued(), 0);
        }
    }

    #[test]
    fn writes_split_exactly_at_each_iovec_boundary() {
        let segments: Vec<Vec<u8>> = vec![vec![1; 4], vec![2; 7], vec![3; 2], vec![4; 11]];
        let expected: Vec<u8> = segments.iter().flatten().copied().collect();
        // per_call landing exactly on each segment boundary: the next
        // flush must start cleanly at the following segment.
        let mut boundary = 0usize;
        for seg in &segments[..segments.len() - 1] {
            boundary += seg.len();
            let mut queue = WriteQueue::new();
            for s in &segments {
                queue.push(s.clone());
            }
            let mut sink = Throttled {
                accepted: Vec::new(),
                per_call: boundary,
                block_next: false,
            };
            drain_queue(&mut queue, &mut sink);
            assert_eq!(sink.accepted, expected, "boundary {boundary}");
        }
    }

    #[test]
    fn framed_prefix_and_payload_segments_stitch_back_together() {
        // The two-segment framed completion must produce exactly the
        // bytes `encode_frame` would have — the replay diff depends on
        // it — even through 1-byte writes.
        let payload = br#"{"ok":true,"op":"list"}"#;
        let expected = encode_frame(payload, crate::frame::MAX_FRAME_CEILING).unwrap();
        let mut queue = WriteQueue::new();
        queue.push((payload.len() as u32).to_be_bytes().to_vec());
        queue.push(payload.to_vec());
        let mut sink = Throttled {
            accepted: Vec::new(),
            per_call: 1,
            block_next: false,
        };
        drain_queue(&mut queue, &mut sink);
        assert_eq!(sink.accepted, expected);
    }

    #[test]
    fn write_queue_batches_past_max_iovecs() {
        // More segments than one writev can gather: flush keeps going
        // in MAX_IOVECS batches within a single call.
        let mut queue = WriteQueue::new();
        for i in 0..(sys::MAX_IOVECS * 2 + 10) {
            queue.push(vec![i as u8]);
        }
        let total = queue.queued();
        let mut sink = Throttled {
            accepted: Vec::new(),
            per_call: usize::MAX,
            block_next: false,
        };
        drain_queue(&mut queue, &mut sink);
        assert_eq!(sink.accepted.len(), total);
        assert!(queue.is_empty());
    }

    #[test]
    fn empty_segments_are_dropped_not_queued() {
        let mut queue = WriteQueue::new();
        queue.push(Vec::new());
        assert!(queue.is_empty());
        queue.push(b"ab".to_vec());
        queue.push(Vec::new());
        queue.push(b"cd".to_vec());
        assert_eq!(queue.queued(), 4);
        let mut sink = Throttled {
            accepted: Vec::new(),
            per_call: usize::MAX,
            block_next: false,
        };
        drain_queue(&mut queue, &mut sink);
        assert_eq!(sink.accepted, b"abcd");
    }

    #[test]
    fn write_zero_is_an_error_not_a_spin() {
        struct Dead;
        impl WritevSink for Dead {
            fn writev(&mut self, _bufs: &[&[u8]]) -> io::Result<usize> {
                Ok(0)
            }
        }
        let mut queue = WriteQueue::new();
        queue.push(b"abc".to_vec());
        assert!(queue.flush(&mut Dead).is_err());
    }
}
