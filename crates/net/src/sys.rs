//! Raw readiness-notification syscalls for the [`crate::reactor`].
//!
//! No `libc` crate: the C library is always linked, so the handful of
//! calls the reactor needs (`epoll` on Linux, `poll(2)` everywhere else
//! on Unix, plus a `pipe(2)`-based waker) are declared directly as
//! `extern "C"` items. The [`Poller`] facade hides the backend choice:
//! Linux defaults to epoll, other Unixes use `poll`, and
//! [`Poller::with_backend`] can force the `poll` backend on Linux so
//! tests exercise the portability path on the primary platform.
//!
//! This module is Unix-only; on other targets the reactor connection
//! model is unavailable and the server falls back to the thread-pool
//! model.
#![cfg(unix)]

use std::collections::HashMap;
use std::io;
use std::os::raw::{c_int, c_short, c_void};
use std::os::unix::io::RawFd;
use std::time::Duration;

// --- extern declarations ---------------------------------------------------

#[cfg(target_os = "linux")]
mod ffi_epoll {
    use super::*;

    // x86_64's ABI packs `epoll_event`; other Linux arches do not.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }
}

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: c_int,
    events: c_short,
    revents: c_short,
}

const POLLIN: c_short = 0x001;
const POLLOUT: c_short = 0x004;
const POLLERR: c_short = 0x008;
const POLLHUP: c_short = 0x010;

#[cfg(target_os = "linux")]
type NfdsT = std::os::raw::c_ulong;
#[cfg(not(target_os = "linux"))]
type NfdsT = std::os::raw::c_uint;

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
#[cfg(target_os = "linux")]
const O_NONBLOCK: c_int = 0o4000;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: c_int = 0x0004;

/// `struct iovec` for `writev(2)`: identical layout on every Unix.
#[repr(C)]
#[derive(Clone, Copy)]
struct IoVec {
    base: *const c_void,
    len: usize,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
    fn pipe(fds: *mut c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn writev(fd: c_int, iov: *const IoVec, iovcnt: c_int) -> isize;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: plain fcntl on an owned fd.
    unsafe {
        let flags = cvt(fcntl(fd, F_GETFL, 0))?;
        cvt(fcntl(fd, F_SETFL, flags | O_NONBLOCK))?;
    }
    Ok(())
}

/// Duration → millisecond timeout for epoll/poll (`None` = wait
/// forever).
fn millis(timeout: Option<Duration>) -> c_int {
    match timeout {
        None => -1,
        // Round up so a 100µs deadline does not busy-spin at timeout 0.
        Some(d) => d
            .as_millis()
            .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
            .min(c_int::MAX as u128) as c_int,
    }
}

/// Most iovecs handed to one `writev` call. Every Unix guarantees an
/// `IOV_MAX` of at least 16; common systems allow 1024. 64 batches
/// enough segments per syscall without risking `EINVAL` anywhere.
pub(crate) const MAX_IOVECS: usize = 64;

/// Gathers up to [`MAX_IOVECS`] buffers into one `writev(2)` call and
/// returns the byte count written (possibly short). Empty buffers are
/// skipped; an entirely-empty slice writes nothing and returns 0.
pub(crate) fn vectored_write(fd: RawFd, bufs: &[&[u8]]) -> io::Result<usize> {
    let mut iov = [IoVec {
        base: std::ptr::null(),
        len: 0,
    }; MAX_IOVECS];
    let mut n = 0usize;
    for buf in bufs {
        if buf.is_empty() {
            continue;
        }
        if n == MAX_IOVECS {
            break;
        }
        iov[n] = IoVec {
            base: buf.as_ptr().cast::<c_void>(),
            len: buf.len(),
        };
        n += 1;
    }
    if n == 0 {
        return Ok(0);
    }
    // SAFETY: iov[..n] points at live, correctly-sized slices.
    let ret = unsafe { writev(fd, iov.as_ptr(), n as c_int) };
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret as usize)
    }
}

// --- accept4 / SO_REUSEPORT (Linux fast paths) ------------------------------

#[cfg(target_os = "linux")]
mod ffi_socket {
    use super::*;

    pub const AF_INET: c_int = 2;
    pub const AF_INET6: c_int = 10;
    pub const SOCK_STREAM: c_int = 1;
    pub const SOCK_NONBLOCK: c_int = 0o4000;
    pub const SOCK_CLOEXEC: c_int = 0o2000000;
    pub const SOL_SOCKET: c_int = 1;
    pub const SO_REUSEADDR: c_int = 2;
    pub const SO_REUSEPORT: c_int = 15;

    extern "C" {
        pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        pub fn bind(fd: c_int, addr: *const c_void, len: u32) -> c_int;
        pub fn listen(fd: c_int, backlog: c_int) -> c_int;
        pub fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_void,
            optlen: u32,
        ) -> c_int;
        pub fn accept4(fd: c_int, addr: *mut c_void, len: *mut u32, flags: c_int) -> c_int;
    }
}

/// Accepts one pending connection without blocking, returning the
/// stream and peer address, or `None` when the backlog is empty. On
/// Linux this is a single `accept4(SOCK_NONBLOCK | SOCK_CLOEXEC)`;
/// elsewhere it is the std accept followed by `set_nonblocking`.
pub(crate) fn accept_nonblocking(
    listener: &std::net::TcpListener,
) -> io::Result<Option<(std::net::TcpStream, std::net::SocketAddr)>> {
    #[cfg(target_os = "linux")]
    {
        use std::os::unix::io::{AsRawFd, FromRawFd};
        // sockaddr_storage is 128 bytes; enough for IPv4 and IPv6.
        let mut addr = [0u8; 128];
        let mut len = addr.len() as u32;
        // SAFETY: valid listener fd; addr/len describe a real buffer.
        let fd = unsafe {
            ffi_socket::accept4(
                listener.as_raw_fd(),
                addr.as_mut_ptr().cast::<c_void>(),
                &mut len,
                ffi_socket::SOCK_NONBLOCK | ffi_socket::SOCK_CLOEXEC,
            )
        };
        if fd < 0 {
            let err = io::Error::last_os_error();
            return if err.kind() == io::ErrorKind::WouldBlock {
                Ok(None)
            } else {
                Err(err)
            };
        }
        // SAFETY: accept4 returned a fresh fd we now own.
        let stream = unsafe { std::net::TcpStream::from_raw_fd(fd) };
        let peer = parse_sockaddr(&addr[..len as usize])
            .map(Ok)
            .unwrap_or_else(|| stream.peer_addr())?;
        Ok(Some((stream, peer)))
    }
    #[cfg(not(target_os = "linux"))]
    {
        match listener.accept() {
            Ok((stream, peer)) => {
                stream.set_nonblocking(true)?;
                Ok(Some((stream, peer)))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// Decodes a raw `sockaddr_in`/`sockaddr_in6` as filled in by `accept4`.
#[cfg(target_os = "linux")]
fn parse_sockaddr(raw: &[u8]) -> Option<std::net::SocketAddr> {
    use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr};
    let family = u16::from_ne_bytes([*raw.first()?, *raw.get(1)?]) as c_int;
    match family {
        ffi_socket::AF_INET if raw.len() >= 8 => {
            let port = u16::from_be_bytes([raw[2], raw[3]]);
            let ip = Ipv4Addr::new(raw[4], raw[5], raw[6], raw[7]);
            Some(SocketAddr::new(IpAddr::V4(ip), port))
        }
        ffi_socket::AF_INET6 if raw.len() >= 24 => {
            let port = u16::from_be_bytes([raw[2], raw[3]]);
            let mut octets = [0u8; 16];
            octets.copy_from_slice(&raw[8..24]);
            Some(SocketAddr::new(IpAddr::V6(Ipv6Addr::from(octets)), port))
        }
        _ => None,
    }
}

/// Binds a listening socket with `SO_REUSEPORT` (and `SO_REUSEADDR`)
/// set *before* bind, so several listeners can share one port and the
/// kernel load-balances accepts across them. Linux-only: other
/// platforms return `Unsupported` and the caller falls back to the
/// single-listener fd-handoff mode.
pub(crate) fn bind_reuseport(addr: &std::net::SocketAddr) -> io::Result<std::net::TcpListener> {
    #[cfg(target_os = "linux")]
    {
        use std::os::unix::io::FromRawFd;
        let (family, raw_addr): (c_int, Vec<u8>) = match addr {
            std::net::SocketAddr::V4(v4) => {
                let mut raw = Vec::with_capacity(16);
                raw.extend_from_slice(&(ffi_socket::AF_INET as u16).to_ne_bytes());
                raw.extend_from_slice(&v4.port().to_be_bytes());
                raw.extend_from_slice(&v4.ip().octets());
                raw.resize(16, 0); // sin_zero padding
                (ffi_socket::AF_INET, raw)
            }
            std::net::SocketAddr::V6(v6) => {
                let mut raw = Vec::with_capacity(28);
                raw.extend_from_slice(&(ffi_socket::AF_INET6 as u16).to_ne_bytes());
                raw.extend_from_slice(&v6.port().to_be_bytes());
                raw.extend_from_slice(&v6.flowinfo().to_be_bytes());
                raw.extend_from_slice(&v6.ip().octets());
                raw.extend_from_slice(&v6.scope_id().to_ne_bytes());
                (ffi_socket::AF_INET6, raw)
            }
        };
        // SAFETY: plain socket-layer syscalls on an fd we own throughout;
        // raw_addr is a correctly-laid-out sockaddr for `family`.
        unsafe {
            let fd = cvt(ffi_socket::socket(
                family,
                ffi_socket::SOCK_STREAM | ffi_socket::SOCK_CLOEXEC,
                0,
            ))?;
            // From here on, close fd on any failure.
            let result = (|| {
                let one: c_int = 1;
                let optlen = std::mem::size_of::<c_int>() as u32;
                let opt = (&one as *const c_int).cast::<c_void>();
                cvt(ffi_socket::setsockopt(
                    fd,
                    ffi_socket::SOL_SOCKET,
                    ffi_socket::SO_REUSEADDR,
                    opt,
                    optlen,
                ))?;
                cvt(ffi_socket::setsockopt(
                    fd,
                    ffi_socket::SOL_SOCKET,
                    ffi_socket::SO_REUSEPORT,
                    opt,
                    optlen,
                ))?;
                cvt(ffi_socket::bind(
                    fd,
                    raw_addr.as_ptr().cast::<c_void>(),
                    raw_addr.len() as u32,
                ))?;
                cvt(ffi_socket::listen(fd, 128))?;
                Ok(())
            })();
            if let Err(e) = result {
                close(fd);
                return Err(e);
            }
            Ok(std::net::TcpListener::from_raw_fd(fd))
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = addr;
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "SO_REUSEPORT listener groups are Linux-only",
        ))
    }
}

// --- public facade ---------------------------------------------------------

/// Which readiness events a registered fd should report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interest {
    pub read: bool,
    pub write: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
}

/// One readiness event. A peer's half-close (`EPOLLRDHUP`) is folded
/// into `readable` — it means a read will (eventually) return EOF, and
/// the peer may still be receiving, so it must not be treated as fatal.
/// `hangup` covers only `EPOLLERR`/`EPOLLHUP` (`POLLERR`/`POLLHUP`):
/// the connection is truly gone in both directions.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    pub hangup: bool,
}

/// Backend selector for [`Poller::with_backend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Backend {
    /// Platform default: epoll on Linux, `poll(2)` elsewhere.
    Auto,
    /// Force the portable `poll(2)` backend (tests, diagnostics).
    Poll,
}

enum Impl {
    #[cfg(target_os = "linux")]
    Epoll { epfd: RawFd },
    Poll {
        registered: HashMap<RawFd, (u64, Interest)>,
    },
}

/// Readiness poller over a set of `(fd, token, interest)` registrations.
pub(crate) struct Poller {
    backend: Impl,
}

impl Poller {
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        if backend == Backend::Auto {
            // SAFETY: epoll_create1 with a valid flag.
            let epfd = cvt(unsafe { ffi_epoll::epoll_create1(ffi_epoll::EPOLL_CLOEXEC) })?;
            return Ok(Poller {
                backend: Impl::Epoll { epfd },
            });
        }
        let _ = backend;
        Ok(Poller {
            backend: Impl::Poll {
                registered: HashMap::new(),
            },
        })
    }

    /// Human-readable backend name (used in test diagnostics).
    #[cfg(test)]
    pub fn backend_name(&self) -> &'static str {
        match self.backend {
            #[cfg(target_os = "linux")]
            Impl::Epoll { .. } => "epoll",
            Impl::Poll { .. } => "poll",
        }
    }

    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Impl::Epoll { epfd } => {
                epoll_ctl_op(*epfd, ffi_epoll::EPOLL_CTL_ADD, fd, token, interest)
            }
            Impl::Poll { registered } => {
                registered.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Impl::Epoll { epfd } => {
                epoll_ctl_op(*epfd, ffi_epoll::EPOLL_CTL_MOD, fd, token, interest)
            }
            Impl::Poll { registered } => {
                registered.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Impl::Epoll { epfd } => {
                epoll_ctl_op(*epfd, ffi_epoll::EPOLL_CTL_DEL, fd, 0, Interest::NONE)
            }
            Impl::Poll { registered } => {
                registered.remove(&fd);
                Ok(())
            }
        }
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses; appends the ready events to `events` (cleared first).
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Impl::Epoll { epfd } => {
                let mut raw = [ffi_epoll::EpollEvent { events: 0, data: 0 }; 64];
                let n = loop {
                    // SAFETY: valid epfd and a correctly-sized buffer.
                    let ret = unsafe {
                        ffi_epoll::epoll_wait(
                            *epfd,
                            raw.as_mut_ptr(),
                            raw.len() as c_int,
                            millis(timeout),
                        )
                    };
                    match cvt(ret) {
                        Ok(n) => break n as usize,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(e),
                    }
                };
                for ev in &raw[..n] {
                    // Copy out of the (possibly packed) struct first.
                    let bits = ev.events;
                    let token = ev.data;
                    events.push(Event {
                        token,
                        readable: bits & (ffi_epoll::EPOLLIN | ffi_epoll::EPOLLRDHUP) != 0,
                        writable: bits & ffi_epoll::EPOLLOUT != 0,
                        hangup: bits & (ffi_epoll::EPOLLERR | ffi_epoll::EPOLLHUP) != 0,
                    });
                }
                Ok(())
            }
            Impl::Poll { registered } => {
                let mut fds: Vec<PollFd> = Vec::with_capacity(registered.len());
                let mut tokens: Vec<u64> = Vec::with_capacity(registered.len());
                for (&fd, &(token, interest)) in registered.iter() {
                    let mut mask: c_short = 0;
                    if interest.read {
                        mask |= POLLIN;
                    }
                    if interest.write {
                        mask |= POLLOUT;
                    }
                    fds.push(PollFd {
                        fd,
                        events: mask,
                        revents: 0,
                    });
                    tokens.push(token);
                }
                loop {
                    // SAFETY: fds points at an initialised slice of PollFd.
                    let ret =
                        unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, millis(timeout)) };
                    match cvt(ret) {
                        Ok(_) => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(e),
                    }
                }
                for (pfd, &token) in fds.iter().zip(&tokens) {
                    if pfd.revents == 0 {
                        continue;
                    }
                    events.push(Event {
                        token,
                        readable: pfd.revents & POLLIN != 0,
                        writable: pfd.revents & POLLOUT != 0,
                        hangup: pfd.revents & (POLLERR | POLLHUP) != 0,
                    });
                }
                Ok(())
            }
        }
    }
}

#[cfg(target_os = "linux")]
fn epoll_ctl_op(
    epfd: RawFd,
    op: c_int,
    fd: RawFd,
    token: u64,
    interest: Interest,
) -> io::Result<()> {
    // RDHUP only rides along with read interest: a connection that is
    // deliberately not reading (mid-dispatch) must not be woken over
    // and over by a peer's half-close, which level-triggered epoll
    // would otherwise re-report forever.
    let mut bits = 0u32;
    if interest.read {
        bits |= ffi_epoll::EPOLLIN | ffi_epoll::EPOLLRDHUP;
    }
    if interest.write {
        bits |= ffi_epoll::EPOLLOUT;
    }
    let mut ev = ffi_epoll::EpollEvent {
        events: bits,
        data: token,
    };
    // SAFETY: valid epfd/fd; `ev` outlives the call (DEL ignores it).
    cvt(unsafe { ffi_epoll::epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Impl::Epoll { epfd } = self.backend {
            // SAFETY: closing an fd we own.
            unsafe {
                close(epfd);
            }
        }
    }
}

/// Cross-thread wakeup for a blocked [`Poller::wait`]: a non-blocking
/// `pipe(2)`. Register [`Waker::read_fd`] with read interest; any thread
/// may call [`Waker::wake`]; the poller thread calls [`Waker::drain`]
/// when the read end reports readable.
pub(crate) struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

// SAFETY: read/write on distinct pipe fds are thread-safe syscalls.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    pub fn new() -> io::Result<Waker> {
        let mut fds = [0 as c_int; 2];
        // SAFETY: pipe writes exactly two fds into the array.
        cvt(unsafe { pipe(fds.as_mut_ptr()) })?;
        let waker = Waker {
            read_fd: fds[0],
            write_fd: fds[1],
        };
        set_nonblocking(waker.read_fd)?;
        set_nonblocking(waker.write_fd)?;
        Ok(waker)
    }

    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Wakes the poller. A full pipe means a wake is already pending —
    /// that is success, not failure.
    pub fn wake(&self) {
        let byte = 1u8;
        // SAFETY: writing one byte from a valid buffer to an owned fd.
        unsafe {
            write(self.write_fd, (&byte as *const u8).cast::<c_void>(), 1);
        }
    }

    /// Consumes all pending wake bytes.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: reading into a valid buffer from an owned fd.
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
            if n <= 0 {
                break; // empty (EAGAIN), EOF or error: nothing pending
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: closing fds we own.
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn backends() -> Vec<Backend> {
        let mut backends = vec![Backend::Auto];
        if cfg!(target_os = "linux") {
            backends.push(Backend::Poll);
        }
        backends
    }

    #[test]
    fn waker_wakes_poller_across_threads() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let waker = std::sync::Arc::new(Waker::new().unwrap());
            poller.register(waker.read_fd(), 7, Interest::READ).unwrap();

            let w = std::sync::Arc::clone(&waker);
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                w.wake();
            });
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 7 && e.readable),
                "{}: expected waker readiness, got {events:?}",
                poller.backend_name()
            );
            waker.drain();
            // Drained: the next wait times out instead of spinning.
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(events.is_empty(), "{}: {events:?}", poller.backend_name());
            t.join().unwrap();
        }
    }

    #[test]
    fn vectored_write_concatenates_buffers() {
        use std::io::Read as _;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();

        let bufs: [&[u8]; 4] = [b"alpha ", b"", b"beta ", b"gamma"];
        let mut written = 0usize;
        let total: usize = bufs.iter().map(|b| b.len()).sum();
        while written < total {
            // Re-slice past what has been written so far (short writes
            // will not happen on loopback at this size, but be exact).
            let mut remaining: Vec<&[u8]> = Vec::new();
            let mut skip = written;
            for buf in &bufs {
                if skip >= buf.len() {
                    skip -= buf.len();
                    continue;
                }
                remaining.push(&buf[skip..]);
                skip = 0;
            }
            written += vectored_write(server_side.as_raw_fd(), &remaining).unwrap();
        }
        drop(server_side);
        let mut got = Vec::new();
        client.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"alpha beta gamma");
    }

    #[test]
    fn vectored_write_of_nothing_is_zero() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        assert_eq!(vectored_write(server_side.as_raw_fd(), &[]).unwrap(), 0);
        let empties: [&[u8]; 2] = [b"", b""];
        assert_eq!(
            vectored_write(server_side.as_raw_fd(), &empties).unwrap(),
            0
        );
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn reuseport_listeners_share_a_port() {
        use std::io::Read as _;
        // Bind the first socket on an ephemeral port, then a second on
        // the resolved port: both must accept.
        let first = bind_reuseport(&"127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = first.local_addr().unwrap();
        let second = bind_reuseport(&addr).unwrap();
        assert_eq!(second.local_addr().unwrap(), addr);

        // The kernel hashes connections across the group; with enough
        // connects both listeners see traffic *or* at least every
        // connect is accepted by someone. Assert the weaker, reliable
        // property: every connection is served.
        first.set_nonblocking(true).unwrap();
        second.set_nonblocking(true).unwrap();
        let mut served: Vec<TcpStream> = Vec::new();
        let clients: Vec<TcpStream> = (0..8).map(|_| TcpStream::connect(addr).unwrap()).collect();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while served.len() < clients.len() && std::time::Instant::now() < deadline {
            for listener in [&first, &second] {
                while let Some((stream, peer)) = accept_nonblocking(listener).unwrap() {
                    assert_eq!(peer, stream.peer_addr().unwrap());
                    served.push(stream);
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(served.len(), clients.len());
        // Accepted fds are nonblocking (accept4 SOCK_NONBLOCK path):
        // nothing has been written, so a read must not hang.
        for mut stream in served {
            let mut buf = [0u8; 1];
            assert_eq!(
                stream.read(&mut buf).unwrap_err().kind(),
                io::ErrorKind::WouldBlock
            );
        }
    }

    #[test]
    fn socket_readability_is_reported() {
        for backend in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let mut client = TcpStream::connect(addr).unwrap();
            let (server_side, _) = listener.accept().unwrap();
            server_side.set_nonblocking(true).unwrap();

            let mut poller = Poller::with_backend(backend).unwrap();
            poller
                .register(server_side.as_raw_fd(), 42, Interest::READ)
                .unwrap();

            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            assert!(events.is_empty(), "{}: {events:?}", poller.backend_name());

            client.write_all(b"x").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 42 && e.readable),
                "{}: {events:?}",
                poller.backend_name()
            );
            poller.deregister(server_side.as_raw_fd()).unwrap();
        }
    }
}
