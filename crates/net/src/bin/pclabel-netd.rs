//! `pclabel-netd` — serve pattern count-based labels over TCP and HTTP.
//!
//! One listening socket speaks both protocols (sniffed per connection):
//! the length-prefixed frame protocol (`u32` big-endian length + JSON)
//! and HTTP/1.1 (`POST /query`, `POST /register`, `GET /stats`,
//! `GET /healthz`, …). Both dispatch through the same core as
//! `pclabel-serve`, so responses are byte-identical across transports.

use std::sync::Arc;
use std::time::Duration;

use pclabel_engine::durability::{Durability, DurabilityOptions};
use pclabel_engine::query::{Engine, EngineConfig};
use pclabel_engine::serve::Dispatcher;
use pclabel_net::server::{ConnectionModel, NetServer, ServerConfig};
use pclabel_telemetry::{LogLevel, Logger, Telemetry};

const USAGE: &str = "\
pclabel-netd — serve pattern count-based labels over TCP/HTTP

usage: pclabel-netd [options]

options:
  --listen ADDR            listen address (default 127.0.0.1:7341; port 0
                           picks an ephemeral port, printed on startup)
  --model pool|reactor     connection model (default: reactor on Unix —
                           epoll on Linux, poll(2) elsewhere — pool
                           otherwise). pool pins one worker per
                           connection; reactor multiplexes all
                           connections on one event loop and uses
                           workers per request, so idle keep-alive
                           clients cannot starve new ones
  --workers N              worker threads (default 4): per-connection in
                           the pool model, per-request in the reactor
  --queue N                pending jobs that may queue for a free worker
                           (default 64)
  --max-parked N           reactor only: requests parked beyond the queue
                           before new ones are refused with HTTP 429 / a
                           framed {\"error\":\"overloaded\"} (default 256;
                           0 = never park)
  --reactors N             reactor only: event loops serving the
                           listener (default: CPU count; 0 = 1). On
                           Linux with epoll each loop accepts from its
                           own SO_REUSEPORT listener and the kernel
                           balances accepts; with --force-poll or on
                           other Unixes loop 0 accepts and hands
                           sockets to its peers round-robin. All loops
                           share one --workers dispatch pool
  --write-watermark BYTES  reactor only: per-connection cap on queued
                           unsent response bytes; at the cap the loop
                           stops reading from that connection until the
                           peer drains its responses (default 262144)
  --max-conns N            reactor only: simultaneous connection cap,
                           split evenly across the event loops; at the
                           cap the least-recently-active idle
                           connection is evicted (default 1024)
  --idle-ms MS             reactor only: close connections idle between
                           requests for MS (default 0 = never)
  --max-frame BYTES        request frame/body size limit (default 1048576)
  --timeout-ms MS          per-connection read/write timeout; also the
                           shutdown poll interval (default 10000; 0 = no
                           timeout — shutdown then waits for idle
                           connections to close)
  --force-poll             reactor only: use the portable poll(2) backend
                           even where epoll is available (diagnostics)
  --allow-remote-shutdown  honour {\"op\":\"shutdown\"} from clients
  --log-level LEVEL        structured JSON log verbosity on stderr:
                           error, warn, info or debug (default info;
                           debug logs every request with per-phase spans)
  --slow-query-ms MS       log requests slower than MS as slow_query
                           warnings with per-phase timing spans and the
                           request id, retrievable afterwards from
                           GET /debug/traces?id=N (default 0 = disabled)
  --log-sample N           at debug level, log only every Nth request
                           line (default 1 = all; warnings and errors
                           are never sampled away)
  --retained-traces N      finished traces kept per op for
                           GET /debug/traces — N most recent plus the N
                           slowest (default 64; 0 = disabled)
  --data-dir DIR           durable mode: recover the store from DIR's
                           newest valid snapshot + WAL replay on boot,
                           then log every mutation (register, refresh,
                           append_rows, drop) before acknowledging it.
                           Without this flag the store is in-memory only.
                           On-disk format: docs/ONDISK_FORMAT.md;
                           operations: docs/OPERATIONS.md
  --fsync always|batch|off WAL fsync policy (default batch): always =
                           fsync per record; batch = fsync at 64 KiB or
                           25 ms of unsynced records, whichever first;
                           off = leave flushing to the OS
  --snapshot-wal-bytes N   write a snapshot (and truncate covered WAL
                           segments) once N unsnapshotted WAL bytes have
                           accumulated (default 4194304)
  -h, --help               this text

Wire protocols on one port, sniffed from the first bytes:
  framed TCP   u32 big-endian payload length + JSON request, same framing
               back; persistent connections
  HTTP/1.1     POST /query | /register | /append_rows | /refresh | /drop
               | /estimate_multi | /server_stats | /server_debug with the
               request JSON as body; GET /stats?dataset=NAME;
               GET /healthz; GET /metrics (Prometheus text);
               GET /debug/traces?op=NAME&slowest=1&id=N (retained
               traces), GET /debug/memory (per-dataset component bytes),
               GET /debug/conns (live connection table) — all served
               without dispatching, so inspection never perturbs what it
               reports; HEAD works on every GET route;
               POST / with an {\"op\":...} body; keep-alive

environment:
  PCLABEL_QUERY_THREADS    worker threads for large query batches
                           (default: auto)
";

fn fail(message: &str) -> ! {
    eprintln!("pclabel-netd: {message}");
    eprintln!("try: pclabel-netd --help");
    std::process::exit(2);
}

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7341".to_string(),
        model: ConnectionModel::platform_default(),
        // The daemon (unlike the library's single-loop default) scales
        // the reactor plane to the machine out of the box.
        reactors: std::thread::available_parallelism().map_or(1, |n| n.get()),
        ..ServerConfig::default()
    };
    let mut log_level = LogLevel::Info;
    let mut slow_query: Option<Duration> = None;
    let mut log_sample: u64 = 1;
    let mut retained_traces = pclabel_telemetry::DEFAULT_RETAINED_TRACES;
    let mut data_dir: Option<String> = None;
    let mut durability_options = DurabilityOptions::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return;
            }
            "--listen" => config.addr = value("--listen"),
            "--model" => {
                config.model = value("--model")
                    .parse()
                    .unwrap_or_else(|e: String| fail(&e));
                if config.model == ConnectionModel::Reactor && !cfg!(unix) {
                    fail("the reactor model needs epoll/poll(2); this platform has neither");
                }
            }
            "--reactors" => {
                config.reactors = value("--reactors")
                    .parse()
                    .unwrap_or_else(|_| fail("--reactors needs an integer"))
            }
            "--write-watermark" => {
                config.write_watermark = value("--write-watermark")
                    .parse()
                    .unwrap_or_else(|_| fail("--write-watermark needs an integer"))
            }
            "--max-conns" => {
                config.max_connections = value("--max-conns")
                    .parse()
                    .unwrap_or_else(|_| fail("--max-conns needs an integer"))
            }
            "--idle-ms" => {
                let ms: u64 = value("--idle-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--idle-ms needs an integer"));
                config.idle_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--force-poll" => config.force_poll_backend = true,
            "--workers" => {
                config.workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|_| fail("--workers needs an integer"))
            }
            "--queue" => {
                config.queue_capacity = value("--queue")
                    .parse()
                    .unwrap_or_else(|_| fail("--queue needs an integer"))
            }
            "--max-parked" => {
                config.max_parked = value("--max-parked")
                    .parse()
                    .unwrap_or_else(|_| fail("--max-parked needs an integer"))
            }
            "--max-frame" => {
                config.max_frame = value("--max-frame")
                    .parse()
                    .unwrap_or_else(|_| fail("--max-frame needs an integer"))
            }
            "--timeout-ms" => {
                let ms: u64 = value("--timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--timeout-ms needs an integer"));
                let timeout = (ms > 0).then(|| Duration::from_millis(ms));
                config.read_timeout = timeout;
                config.write_timeout = timeout;
            }
            "--allow-remote-shutdown" => config.allow_remote_shutdown = true,
            "--log-level" => {
                log_level = value("--log-level")
                    .parse()
                    .unwrap_or_else(|e: String| fail(&e))
            }
            "--slow-query-ms" => {
                let ms: u64 = value("--slow-query-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--slow-query-ms needs an integer"));
                slow_query = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--log-sample" => {
                log_sample = value("--log-sample")
                    .parse()
                    .unwrap_or_else(|_| fail("--log-sample needs an integer"))
            }
            "--retained-traces" => {
                retained_traces = value("--retained-traces")
                    .parse()
                    .unwrap_or_else(|_| fail("--retained-traces needs an integer"))
            }
            "--data-dir" => data_dir = Some(value("--data-dir")),
            "--fsync" => {
                durability_options.fsync = value("--fsync")
                    .parse()
                    .unwrap_or_else(|e: String| fail(&e))
            }
            "--snapshot-wal-bytes" => {
                durability_options.snapshot_wal_bytes = value("--snapshot-wal-bytes")
                    .parse()
                    .unwrap_or_else(|_| fail("--snapshot-wal-bytes needs an integer"))
            }
            other => fail(&format!("unknown flag {other:?}")),
        }
    }

    let query_threads = std::env::var("PCLABEL_QUERY_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(0);
    let telemetry = Telemetry::with_options(
        Logger::new(log_level, slow_query).with_sample(log_sample),
        retained_traces,
    );
    let engine = Engine::new(EngineConfig {
        query_threads,
        ..EngineConfig::default()
    });
    // `_durability` owns the background flusher/snapshotter threads;
    // keeping it alive until after server.wait() is what flushes the
    // final batch on clean shutdown.
    let _durability = data_dir.map(|dir| {
        let durability = Durability::open(
            &dir,
            durability_options,
            engine.store_arc(),
            telemetry.registry(),
        )
        .unwrap_or_else(|e| fail(&format!("recovery from {dir}: {e}")));
        let report = durability.recovery();
        // Boot summary on stderr alongside the structured logs: what
        // recovery trusted and where it stopped.
        eprintln!(
            "pclabel-netd: recovered {} dataset(s) to lsn {} from {dir} \
             (snapshot lsn {}, {} WAL record(s) replayed)",
            report.datasets,
            report.recovered_lsn,
            report
                .snapshot_lsn
                .map_or("none".to_string(), |l| l.to_string()),
            report.replayed_records,
        );
        for (path, reason) in &report.rejected_snapshots {
            eprintln!(
                "pclabel-netd: rejected snapshot {}: {reason}",
                path.display()
            );
        }
        if let Some(reason) = &report.stopped {
            eprintln!("pclabel-netd: WAL replay stopped early: {reason}");
        }
        if !report.quarantined.is_empty() {
            let names: Vec<String> = report
                .quarantined
                .iter()
                .map(|p| p.display().to_string())
                .collect();
            eprintln!(
                "pclabel-netd: quarantined {} WAL file(s): {}",
                names.len(),
                names.join(", ")
            );
        }
        engine.attach_durability(Arc::clone(&durability));
        durability
    });
    let dispatcher = Arc::new(Dispatcher::with_engine(engine, telemetry));

    let workers = config.workers;
    let model = config.model;
    let reactors = if model == ConnectionModel::Reactor && cfg!(unix) {
        config.reactors.max(1)
    } else {
        0
    };
    let server = match NetServer::spawn(dispatcher, config) {
        Ok(server) => server,
        Err(e) => fail(&format!("failed to start: {e}")),
    };
    // Startup line on stdout so supervisors (and the CI smoke script)
    // can discover the resolved ephemeral port. The address stays the
    // fourth whitespace-separated field — scripts parse it.
    if reactors > 0 {
        println!(
            "pclabel-netd: listening on {} ({workers} workers, {model} model, {reactors} reactors)",
            server.local_addr()
        );
    } else {
        println!(
            "pclabel-netd: listening on {} ({workers} workers, {model} model)",
            server.local_addr()
        );
    }
    server.wait();
    println!("pclabel-netd: shut down");
}
