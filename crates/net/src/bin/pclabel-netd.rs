//! `pclabel-netd` — serve pattern count-based labels over TCP and HTTP.
//!
//! One listening socket speaks both protocols (sniffed per connection):
//! the length-prefixed frame protocol (`u32` big-endian length + JSON)
//! and HTTP/1.1 (`POST /query`, `POST /register`, `GET /stats`,
//! `GET /healthz`, …). Both dispatch through the same core as
//! `pclabel-serve`, so responses are byte-identical across transports.

use std::sync::Arc;
use std::time::Duration;

use pclabel_engine::query::{Engine, EngineConfig};
use pclabel_engine::serve::Dispatcher;
use pclabel_net::server::{NetServer, ServerConfig};

const USAGE: &str = "\
pclabel-netd — serve pattern count-based labels over TCP/HTTP

usage: pclabel-netd [options]

options:
  --listen ADDR            listen address (default 127.0.0.1:7341; port 0
                           picks an ephemeral port, printed on startup)
  --workers N              connection worker threads (default 4)
  --queue N                accepted connections that may queue for a free
                           worker before accept blocks (default 64)
  --max-frame BYTES        request frame/body size limit (default 1048576)
  --timeout-ms MS          per-connection read/write timeout; also the
                           shutdown poll interval (default 10000; 0 = no
                           timeout — shutdown then waits for idle
                           connections to close)
  --allow-remote-shutdown  honour {\"op\":\"shutdown\"} from clients
  -h, --help               this text

Wire protocols on one port, sniffed from the first bytes:
  framed TCP   u32 big-endian payload length + JSON request, same framing
               back; persistent connections
  HTTP/1.1     POST /query | /register | /refresh | /drop | /estimate_multi
               with the request JSON as body; GET /stats?dataset=NAME;
               GET /healthz; POST / with an {\"op\":...} body; keep-alive

environment:
  PCLABEL_QUERY_THREADS    worker threads for large query batches
                           (default: auto)
";

fn fail(message: &str) -> ! {
    eprintln!("pclabel-netd: {message}");
    eprintln!("try: pclabel-netd --help");
    std::process::exit(2);
}

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7341".to_string(),
        ..ServerConfig::default()
    };

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return;
            }
            "--listen" => config.addr = value("--listen"),
            "--workers" => {
                config.workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|_| fail("--workers needs an integer"))
            }
            "--queue" => {
                config.queue_capacity = value("--queue")
                    .parse()
                    .unwrap_or_else(|_| fail("--queue needs an integer"))
            }
            "--max-frame" => {
                config.max_frame = value("--max-frame")
                    .parse()
                    .unwrap_or_else(|_| fail("--max-frame needs an integer"))
            }
            "--timeout-ms" => {
                let ms: u64 = value("--timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| fail("--timeout-ms needs an integer"));
                let timeout = (ms > 0).then(|| Duration::from_millis(ms));
                config.read_timeout = timeout;
                config.write_timeout = timeout;
            }
            "--allow-remote-shutdown" => config.allow_remote_shutdown = true,
            other => fail(&format!("unknown flag {other:?}")),
        }
    }

    let query_threads = std::env::var("PCLABEL_QUERY_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(0);
    let dispatcher = Arc::new(Dispatcher::new(Engine::new(EngineConfig {
        query_threads,
        ..EngineConfig::default()
    })));

    let workers = config.workers;
    let server = match NetServer::spawn(dispatcher, config) {
        Ok(server) => server,
        Err(e) => fail(&format!("failed to start: {e}")),
    };
    // Startup line on stdout so supervisors (and the CI smoke script)
    // can discover the resolved ephemeral port.
    println!(
        "pclabel-netd: listening on {} ({workers} workers)",
        server.local_addr()
    );
    server.wait();
    println!("pclabel-netd: shut down");
}
