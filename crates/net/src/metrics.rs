//! Connection-level telemetry for the network front end.
//!
//! Both connection models report through the same handles, registered
//! in the dispatcher's [`Registry`] at server spawn — so one `/metrics`
//! scrape (or `{"op":"server_stats"}`) covers the engine and the
//! transport alike, and pool vs reactor runs expose identical series.
//! When the dispatcher's telemetry is disabled every update below is a
//! single predictable branch (see `pclabel-telemetry`).

use std::sync::Arc;

use pclabel_telemetry::{Counter, Gauge, Histogram, Registry};

/// Handles shared by the acceptor, the reactor loop and pool workers.
pub(crate) struct NetMetrics {
    /// Currently open client connections (reactor: owned state
    /// machines; pool: connections occupying a worker).
    pub(crate) open_connections: Arc<Gauge>,
    /// Requests parked in the reactor because the pool queue was full.
    pub(crate) parked_jobs: Arc<Gauge>,
    /// Connections accepted since startup.
    pub(crate) accepts: Arc<Counter>,
    /// Idle connections evicted by the reactor's connection cap.
    pub(crate) evictions: Arc<Counter>,
    /// Requests refused with `overloaded` (HTTP 429 / framed error).
    pub(crate) overloaded: Arc<Counter>,
    /// Reactor loop busy time between two poll waits: how long a poll
    /// wakeup keeps the one shared thread before it can sleep again.
    pub(crate) loop_busy: Arc<Histogram>,
}

impl NetMetrics {
    pub(crate) fn register(registry: &Registry) -> NetMetrics {
        NetMetrics {
            open_connections: registry.gauge(
                "pclabel_net_open_connections",
                "Currently open client connections.",
                &[],
            ),
            parked_jobs: registry.gauge(
                "pclabel_net_parked_jobs",
                "Requests parked in the reactor waiting for a pool worker.",
                &[],
            ),
            accepts: registry.counter(
                "pclabel_net_accepts_total",
                "Connections accepted since startup.",
                &[],
            ),
            evictions: registry.counter(
                "pclabel_net_evictions_total",
                "Idle connections evicted by the reactor connection cap.",
                &[],
            ),
            overloaded: registry.counter(
                "pclabel_net_overloaded_total",
                "Requests refused for overload (HTTP 429 or framed error).",
                &[],
            ),
            loop_busy: registry.histogram(
                "pclabel_net_loop_busy_seconds",
                "Reactor poll-loop busy time between two waits.",
                &[],
            ),
        }
    }
}
