//! Connection-level telemetry for the network front end.
//!
//! Both connection models report through the same handles, registered
//! in the dispatcher's [`Registry`] at server spawn — so one `/metrics`
//! scrape (or `{"op":"server_stats"}`) covers the engine and the
//! transport alike, and pool vs reactor runs expose identical series.
//! When the dispatcher's telemetry is disabled every update below is a
//! single predictable branch (see `pclabel-telemetry`).
//!
//! With the multi-reactor plane, the unlabeled gauges/counters stay
//! process-wide totals (updated by inc/dec from whichever loop touched
//! the connection, so they always sum to the truth), while each event
//! loop additionally registers a `loop="N"`-labeled slice via
//! [`LoopMetrics::register`]: per-loop open connections and the
//! per-loop busy-time histogram.

use std::sync::Arc;

use pclabel_telemetry::{Counter, Gauge, Histogram, Registry};

/// Handles shared by the acceptor, every reactor loop and pool workers.
pub(crate) struct NetMetrics {
    /// Currently open client connections across all loops (reactor:
    /// owned state machines; pool: connections occupying a worker).
    pub(crate) open_connections: Arc<Gauge>,
    /// Requests parked because the pool queue was full (all loops).
    pub(crate) parked_jobs: Arc<Gauge>,
    /// Connections accepted since startup.
    pub(crate) accepts: Arc<Counter>,
    /// Idle connections evicted by the reactor's connection cap.
    pub(crate) evictions: Arc<Counter>,
    /// Requests refused with `overloaded` (HTTP 429 / framed error).
    pub(crate) overloaded: Arc<Counter>,
    /// Event loops serving this listener (0 in the pool model).
    pub(crate) reactors: Arc<Gauge>,
}

impl NetMetrics {
    pub(crate) fn register(registry: &Registry) -> NetMetrics {
        NetMetrics {
            open_connections: registry.gauge(
                "pclabel_net_open_connections",
                "Currently open client connections.",
                &[],
            ),
            parked_jobs: registry.gauge(
                "pclabel_net_parked_jobs",
                "Requests parked in the reactor waiting for a pool worker.",
                &[],
            ),
            accepts: registry.counter(
                "pclabel_net_accepts_total",
                "Connections accepted since startup.",
                &[],
            ),
            evictions: registry.counter(
                "pclabel_net_evictions_total",
                "Idle connections evicted by the reactor connection cap.",
                &[],
            ),
            overloaded: registry.counter(
                "pclabel_net_overloaded_total",
                "Requests refused for overload (HTTP 429 or framed error).",
                &[],
            ),
            reactors: registry.gauge(
                "pclabel_net_reactors",
                "Reactor event loops serving this listener (0 = pool model).",
                &[],
            ),
        }
    }
}

/// Per-event-loop telemetry slice, labeled `loop="N"`. Registered by
/// each reactor loop at spawn; the unlabeled totals in [`NetMetrics`]
/// remain the authoritative sums.
pub(crate) struct LoopMetrics {
    /// Connections currently owned by this loop.
    pub(crate) open_connections: Arc<Gauge>,
    /// This loop's busy time between two poll waits: how long a wakeup
    /// keeps the loop thread before it can sleep again.
    pub(crate) busy: Arc<Histogram>,
}

impl LoopMetrics {
    pub(crate) fn register(registry: &Registry, loop_id: usize) -> LoopMetrics {
        let label = loop_id.to_string();
        let labels = [("loop", label.as_str())];
        LoopMetrics {
            open_connections: registry.gauge(
                "pclabel_net_loop_open_connections",
                "Connections currently owned by one reactor event loop.",
                &labels,
            ),
            busy: registry.histogram(
                "pclabel_net_loop_busy_seconds",
                "Reactor poll-loop busy time between two waits.",
                &labels,
            ),
        }
    }
}
