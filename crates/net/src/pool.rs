//! A fixed-size worker thread pool fed by a bounded job queue.
//!
//! The server hands each accepted connection to the pool. The queue is
//! *bounded*: when all workers are busy and the queue is full,
//! [`ThreadPool::execute`] blocks the acceptor — backpressure shows up
//! as TCP accept-queue pressure on clients instead of unbounded memory
//! growth in the server. Shutdown drains the queue: already-accepted
//! connections are served, then the workers exit.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work for the pool. Public so callers that must not block
/// (the reactor event loop) can get a rejected job handed back from
/// [`ThreadPool::try_execute`] and retry it later.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why [`ThreadPool::try_execute`] rejected a job; carries the job back
/// so the caller can retry (or drop) it.
pub enum TryExecuteError {
    /// The queue is at capacity; retry when a worker frees up.
    Full(Job),
    /// The pool is shutting down; the job will never run.
    Closed(Job),
}

impl std::fmt::Debug for TryExecuteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TryExecuteError::Full(_) => "TryExecuteError::Full(..)",
            TryExecuteError::Closed(_) => "TryExecuteError::Closed(..)",
        })
    }
}

/// The pool is shutting down; the submitted job was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolClosed;

impl std::fmt::Display for PoolClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool is shutting down")
    }
}

impl std::error::Error for PoolClosed {}

struct QueueInner<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

/// A blocking MPMC queue with a hard capacity.
struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Blocks while the queue is full; returns the item back if the
    /// queue has been closed.
    fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if inner.closed {
                return Err(item);
            }
            if inner.items.len() < inner.capacity {
                inner.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).expect("queue lock");
        }
    }

    /// Non-blocking push: fails immediately when full or closed.
    fn try_push(&self, item: T) -> Result<(), (T, bool)> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err((item, true));
        }
        if inner.items.len() >= inner.capacity {
            return Err((item, false));
        }
        inner.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks while the queue is empty; returns `None` once the queue is
    /// closed *and* drained.
    fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock");
        }
    }

    fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }
}

/// A cloneable probe of a pool's pending-job queue depth, detached from
/// the [`ThreadPool`]'s ownership (the pool itself moves into the
/// acceptor/reactor thread; introspection endpoints keep a probe). See
/// [`ThreadPool::depth_probe`].
#[derive(Clone)]
pub struct QueueDepthProbe(Arc<BoundedQueue<Job>>);

impl QueueDepthProbe {
    /// Jobs currently waiting in the queue (accepted but not yet claimed
    /// by a worker).
    pub fn depth(&self) -> usize {
        self.0.len()
    }
}

/// A fixed-size pool of worker threads consuming jobs from a bounded
/// queue.
pub struct ThreadPool {
    queue: Arc<BoundedQueue<Job>>,
    // Behind a mutex so `shutdown` works through a shared reference:
    // several reactor loops share one pool via `Arc`, and whichever
    // loop exits last gets to join the workers.
    workers: Mutex<Vec<JoinHandle<()>>>,
    count: usize,
}

impl ThreadPool {
    /// Spawns `workers` threads (min 1) behind a queue holding at most
    /// `queue_capacity` pending jobs (min 1).
    pub fn new(workers: usize, queue_capacity: usize) -> Self {
        let queue: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(queue_capacity));
        let handles: Vec<JoinHandle<()>> = (0..workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("pclabel-net-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            job();
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            queue,
            count: handles.len(),
            workers: Mutex::new(handles),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.count
    }

    /// A [`QueueDepthProbe`] onto this pool's queue, for queue-depth
    /// introspection (`/debug/conns`) after the pool has moved into its
    /// serving thread.
    pub fn depth_probe(&self) -> QueueDepthProbe {
        QueueDepthProbe(Arc::clone(&self.queue))
    }

    /// Enqueues a job, blocking while the queue is full. Returns `Err`
    /// if the pool is shutting down (the job is dropped).
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), PoolClosed> {
        self.queue.push(Box::new(job)).map_err(|_| PoolClosed)
    }

    /// Non-blocking enqueue for callers that must never stall (the
    /// reactor event loop). A [`TryExecuteError::Full`] hands the job
    /// back; a freed worker is guaranteed to be observable later (every
    /// running job ends), so the caller can park it and retry.
    pub fn try_execute(&self, job: Job) -> Result<(), TryExecuteError> {
        self.queue.try_push(job).map_err(|(job, closed)| {
            if closed {
                TryExecuteError::Closed(job)
            } else {
                TryExecuteError::Full(job)
            }
        })
    }

    /// Closes the queue, lets workers drain the remaining jobs, and
    /// joins them. Safe to call from several owners of a shared pool:
    /// the first caller joins, later calls find nothing left to do.
    pub fn shutdown(&self) {
        self.queue.close();
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().expect("pool workers"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Dropping without an explicit shutdown still terminates the
        // workers (close + detach; jobs in flight finish on their own).
        self.queue.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn all_jobs_run_once() {
        let pool = ThreadPool::new(4, 8);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn bounded_queue_applies_backpressure_then_drains() {
        // One deliberately slow worker and a tiny queue: the producer is
        // forced to block, yet every job still runs exactly once.
        let pool = ThreadPool::new(1, 2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                std::thread::sleep(Duration::from_millis(2));
                counter.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn try_execute_reports_full_and_hands_the_job_back() {
        // Block the single worker so the queue (capacity 1) fills.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let pool = ThreadPool::new(1, 1);
        {
            let gate = Arc::clone(&gate);
            pool.execute(move || {
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            })
            .unwrap();
        }
        // Worker busy; one job fits in the queue, the next is rejected.
        let ran = Arc::new(AtomicUsize::new(0));
        let submit = |ran: &Arc<AtomicUsize>| -> Job {
            let ran = Arc::clone(ran);
            Box::new(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            })
        };
        let mut queued = 0;
        let mut rejected: Option<Job> = None;
        for _ in 0..50 {
            match pool.try_execute(submit(&ran)) {
                Ok(()) => queued += 1,
                Err(TryExecuteError::Full(job)) => {
                    rejected = Some(job);
                    break;
                }
                Err(TryExecuteError::Closed(_)) => panic!("pool is not closed"),
            }
        }
        let rejected = rejected.expect("bounded queue must eventually reject");
        // Unblock the worker; retrying the same handed-back job (as the
        // reactor does) eventually succeeds.
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        let mut job = Some(rejected);
        while let Some(j) = job.take() {
            match pool.try_execute(j) {
                Ok(()) => {}
                Err(TryExecuteError::Full(j)) => {
                    std::thread::sleep(Duration::from_millis(1));
                    job = Some(j);
                }
                Err(TryExecuteError::Closed(_)) => panic!("pool is not closed"),
            }
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), queued + 1);
    }

    #[test]
    fn depth_probe_reports_pending_jobs() {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let pool = ThreadPool::new(1, 4);
        let probe = pool.depth_probe();
        assert_eq!(probe.depth(), 0);
        {
            let gate = Arc::clone(&gate);
            pool.execute(move || {
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            })
            .unwrap();
        }
        // Wait for the single worker to claim the blocker, then the next
        // jobs can only sit in the queue.
        while probe.depth() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        pool.execute(|| {}).unwrap();
        pool.execute(|| {}).unwrap();
        assert_eq!(probe.depth(), 2);
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        pool.shutdown();
        assert_eq!(probe.depth(), 0);
    }

    #[test]
    fn execute_after_shutdown_fails() {
        let pool = ThreadPool::new(1, 1);
        let queue = Arc::clone(&pool.queue);
        pool.shutdown();
        assert!(queue.push(Box::new(|| {})).is_err());
    }
}
