//! A fixed-size worker thread pool fed by a bounded job queue.
//!
//! The server hands each accepted connection to the pool. The queue is
//! *bounded*: when all workers are busy and the queue is full,
//! [`ThreadPool::execute`] blocks the acceptor — backpressure shows up
//! as TCP accept-queue pressure on clients instead of unbounded memory
//! growth in the server. Shutdown drains the queue: already-accepted
//! connections are served, then the workers exit.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The pool is shutting down; the submitted job was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolClosed;

impl std::fmt::Display for PoolClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool is shutting down")
    }
}

impl std::error::Error for PoolClosed {}

struct QueueInner<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

/// A blocking MPMC queue with a hard capacity.
struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Blocks while the queue is full; returns the item back if the
    /// queue has been closed.
    fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if inner.closed {
                return Err(item);
            }
            if inner.items.len() < inner.capacity {
                inner.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).expect("queue lock");
        }
    }

    /// Blocks while the queue is empty; returns `None` once the queue is
    /// closed *and* drained.
    fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock");
        }
    }

    fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// A fixed-size pool of worker threads consuming jobs from a bounded
/// queue.
pub struct ThreadPool {
    queue: Arc<BoundedQueue<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `workers` threads (min 1) behind a queue holding at most
    /// `queue_capacity` pending jobs (min 1).
    pub fn new(workers: usize, queue_capacity: usize) -> Self {
        let queue: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(queue_capacity));
        let workers: Vec<JoinHandle<()>> = (0..workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("pclabel-net-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            job();
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { queue, workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job, blocking while the queue is full. Returns `Err`
    /// if the pool is shutting down (the job is dropped).
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), PoolClosed> {
        self.queue.push(Box::new(job)).map_err(|_| PoolClosed)
    }

    /// Closes the queue, lets workers drain the remaining jobs, and
    /// joins them.
    pub fn shutdown(mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Dropping without an explicit shutdown still terminates the
        // workers (close + detach; jobs in flight finish on their own).
        self.queue.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn all_jobs_run_once() {
        let pool = ThreadPool::new(4, 8);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn bounded_queue_applies_backpressure_then_drains() {
        // One deliberately slow worker and a tiny queue: the producer is
        // forced to block, yet every job still runs exactly once.
        let pool = ThreadPool::new(1, 2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                std::thread::sleep(Duration::from_millis(2));
                counter.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn execute_after_shutdown_fails() {
        let pool = ThreadPool::new(1, 1);
        let queue = Arc::clone(&pool.queue);
        pool.shutdown();
        assert!(queue.push(Box::new(|| {})).is_err());
    }
}
