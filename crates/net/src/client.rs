//! Blocking clients for both wire protocols.
//!
//! [`NetClient`] speaks the length-prefixed frame protocol over one
//! persistent connection — the integration tests, the concurrency
//! hammer and `engine_bench --net` all drive the server through it.
//! [`HttpClient`] is a persistent HTTP/1.1 client (keep-alive,
//! `Content-Length` framing) for exercising the HTTP adapter.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use pclabel_engine::json::{Json, JsonError};

use crate::frame::{read_frame, write_frame, FrameError, MAX_FRAME_CEILING};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Framing/transport failure.
    Frame(FrameError),
    /// The server closed the connection instead of responding.
    ServerClosed,
    /// The response payload was not UTF-8.
    Utf8,
    /// The response payload was not valid JSON.
    Json(JsonError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::ServerClosed => write!(f, "server closed the connection"),
            ClientError::Utf8 => write!(f, "response is not valid UTF-8"),
            ClientError::Json(e) => write!(f, "response is not valid JSON: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

/// A blocking framed-TCP client: one request frame out, one response
/// frame back, over a persistent connection.
pub struct NetClient {
    stream: TcpStream,
    max_frame: u32,
}

impl NetClient {
    /// Connects with 10-second read/write timeouts and Nagle disabled.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(NetClient {
            stream,
            max_frame: MAX_FRAME_CEILING,
        })
    }

    /// Overrides both socket timeouts (`None` blocks indefinitely).
    pub fn set_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Caps the size of frames this client will send or accept.
    pub fn set_max_frame(&mut self, max: u32) {
        self.max_frame = max.min(MAX_FRAME_CEILING);
    }

    /// Sends one raw request line and returns the raw response text.
    pub fn request_line(&mut self, line: &str) -> Result<String, ClientError> {
        write_frame(&mut self.stream, line.as_bytes(), self.max_frame)?;
        let payload =
            read_frame(&mut self.stream, self.max_frame)?.ok_or(ClientError::ServerClosed)?;
        String::from_utf8(payload).map_err(|_| ClientError::Utf8)
    }

    /// Sends one request object and parses the response.
    pub fn request(&mut self, request: &Json) -> Result<Json, ClientError> {
        let text = self.request_line(&request.to_string())?;
        Json::parse(&text).map_err(ClientError::Json)
    }
}

/// One parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// The body (decoded per `Content-Length`).
    pub body: String,
}

impl HttpResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A blocking, persistent HTTP/1.1 client (keep-alive by default).
pub struct HttpClient {
    stream: TcpStream,
    carry: Vec<u8>,
}

impl HttpClient {
    /// Connects with 10-second read/write timeouts.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(HttpClient {
            stream,
            carry: Vec::new(),
        })
    }

    /// Issues one request and reads the response. `body = None` sends no
    /// `Content-Length`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<HttpResponse> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: pclabel\r\n");
        if let Some(body) = body {
            head.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                body.len()
            ));
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        if let Some(body) = body {
            self.stream.write_all(body.as_bytes())?;
        }
        self.stream.flush()?;
        // A HEAD response declares the Content-Length its GET twin would
        // carry but sends no body bytes — reading them would hang.
        self.read_response(method.eq_ignore_ascii_case("HEAD"))
    }

    fn fill(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        self.carry.extend_from_slice(&chunk[..n]);
        Ok(())
    }

    fn read_response(&mut self, head_only: bool) -> io::Result<HttpResponse> {
        let head_end = loop {
            if let Some(pos) = self
                .carry
                .windows(4)
                .position(|window| window == b"\r\n\r\n")
            {
                break pos;
            }
            self.fill()?;
        };
        let head = String::from_utf8(self.carry[..head_end].to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response head"))?;
        self.carry.drain(..head_end + 4);

        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status = status_line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
        let headers: Vec<(String, String)> = lines
            .filter_map(|line| {
                line.split_once(':')
                    .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
            })
            .collect();
        let content_length = if head_only {
            0
        } else {
            headers
                .iter()
                .find(|(k, _)| k == "content-length")
                .and_then(|(_, v)| v.parse::<usize>().ok())
                .unwrap_or(0)
        };
        while self.carry.len() < content_length {
            self.fill()?;
        }
        let body_bytes: Vec<u8> = self.carry.drain(..content_length).collect();
        let body = String::from_utf8(body_bytes)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response body"))?;
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }
}
