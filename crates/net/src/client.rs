//! Blocking clients for both wire protocols.
//!
//! [`NetClient`] speaks the length-prefixed frame protocol over one
//! persistent connection — the integration tests, the concurrency
//! hammer and `engine_bench --net` all drive the server through it.
//! [`HttpClient`] is a persistent HTTP/1.1 client (keep-alive,
//! `Content-Length` framing) for exercising the HTTP adapter.
//! [`RetryingClient`] wraps `NetClient` with a [`RetryPolicy`]:
//! deadline-budgeted, seeded-jitter exponential backoff, reconnecting
//! transparently — with auto-retry restricted to what is provably safe
//! (idempotent ops after transport failures, any op after an explicit
//! `overloaded`/`degraded` rejection, which the server returns *without*
//! executing the request).

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use pclabel_engine::json::{Json, JsonError};

use crate::frame::{read_frame, write_frame, FrameError, MAX_FRAME_CEILING};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Framing/transport failure.
    Frame(FrameError),
    /// The server closed the connection instead of responding.
    ServerClosed,
    /// The response payload was not UTF-8.
    Utf8,
    /// The response payload was not valid JSON.
    Json(JsonError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::ServerClosed => write!(f, "server closed the connection"),
            ClientError::Utf8 => write!(f, "response is not valid UTF-8"),
            ClientError::Json(e) => write!(f, "response is not valid JSON: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

/// A blocking framed-TCP client: one request frame out, one response
/// frame back, over a persistent connection.
pub struct NetClient {
    stream: TcpStream,
    max_frame: u32,
}

impl NetClient {
    /// Connects with 10-second read/write timeouts and Nagle disabled.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(NetClient {
            stream,
            max_frame: MAX_FRAME_CEILING,
        })
    }

    /// Overrides both socket timeouts (`None` blocks indefinitely).
    pub fn set_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Caps the size of frames this client will send or accept.
    pub fn set_max_frame(&mut self, max: u32) {
        self.max_frame = max.min(MAX_FRAME_CEILING);
    }

    /// Sends one raw request line and returns the raw response text.
    pub fn request_line(&mut self, line: &str) -> Result<String, ClientError> {
        write_frame(&mut self.stream, line.as_bytes(), self.max_frame)?;
        let payload =
            read_frame(&mut self.stream, self.max_frame)?.ok_or(ClientError::ServerClosed)?;
        String::from_utf8(payload).map_err(|_| ClientError::Utf8)
    }

    /// Sends one request object and parses the response.
    pub fn request(&mut self, request: &Json) -> Result<Json, ClientError> {
        let text = self.request_line(&request.to_string())?;
        Json::parse(&text).map_err(ClientError::Json)
    }
}

/// One parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// The body (decoded per `Content-Length`).
    pub body: String,
}

impl HttpResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A blocking, persistent HTTP/1.1 client (keep-alive by default).
pub struct HttpClient {
    stream: TcpStream,
    carry: Vec<u8>,
}

impl HttpClient {
    /// Connects with 10-second read/write timeouts.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(HttpClient {
            stream,
            carry: Vec::new(),
        })
    }

    /// Issues one request and reads the response. `body = None` sends no
    /// `Content-Length`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<HttpResponse> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: pclabel\r\n");
        if let Some(body) = body {
            head.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                body.len()
            ));
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        if let Some(body) = body {
            self.stream.write_all(body.as_bytes())?;
        }
        self.stream.flush()?;
        // A HEAD response declares the Content-Length its GET twin would
        // carry but sends no body bytes — reading them would hang.
        self.read_response(method.eq_ignore_ascii_case("HEAD"))
    }

    fn fill(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        self.carry.extend_from_slice(&chunk[..n]);
        Ok(())
    }

    fn read_response(&mut self, head_only: bool) -> io::Result<HttpResponse> {
        let head_end = loop {
            if let Some(pos) = self
                .carry
                .windows(4)
                .position(|window| window == b"\r\n\r\n")
            {
                break pos;
            }
            self.fill()?;
        };
        let head = String::from_utf8(self.carry[..head_end].to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response head"))?;
        self.carry.drain(..head_end + 4);

        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status = status_line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
        let headers: Vec<(String, String)> = lines
            .filter_map(|line| {
                line.split_once(':')
                    .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
            })
            .collect();
        let content_length = if head_only {
            0
        } else {
            headers
                .iter()
                .find(|(k, _)| k == "content-length")
                .and_then(|(_, v)| v.parse::<usize>().ok())
                .unwrap_or(0)
        };
        while self.carry.len() < content_length {
            self.fill()?;
        }
        let body_bytes: Vec<u8> = self.carry.drain(..content_length).collect();
        let body = String::from_utf8(body_bytes)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response body"))?;
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }
}

/// Client-side retry tuning. The schedule is a *pure function* of the
/// policy (seeded jitter, no wall clock sampled inside the planner), so
/// a given policy always produces the same backoff sequence — tests
/// assert the schedule exactly, and two clients with different seeds
/// decorrelate their retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum total attempts (first try included). 1 disables retry.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Backoff growth cap.
    pub max_backoff: Duration,
    /// Total budget across all attempts and sleeps. A planned sleep is
    /// clamped so sleep-end never exceeds the deadline, and once the
    /// budget is spent no further retry is planned.
    pub deadline: Duration,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            deadline: Duration::from_secs(10),
            seed: 0x5eed_5eed_5eed_5eed,
        }
    }
}

impl RetryPolicy {
    /// Whether `op` is safe to auto-retry after a *transport* failure,
    /// where the client cannot know if the server executed the request.
    /// Read-only ops are; mutators (`register`, `append_rows`,
    /// `refresh`, `drop`) and `shutdown` are not — replaying a possibly
    /// applied `append_rows` would double rows. (An explicit
    /// `overloaded`/`degraded` *response* is different: the server
    /// answered without executing, so anything may retry.)
    pub fn is_idempotent(op: &str) -> bool {
        matches!(
            op,
            "query"
                | "estimate_multi"
                | "stats"
                | "list"
                | "health"
                | "server_stats"
                | "server_debug"
        )
    }

    /// Whether a parsed response is an explicit retry-me rejection:
    /// `{"ok":false,"error":"overloaded"|"degraded",...}`. Safe to retry
    /// for any op — the server refused before executing.
    pub fn response_retryable(response: &Json) -> bool {
        if response.get("ok") != Some(&Json::Bool(false)) {
            return false;
        }
        matches!(
            response.get("error").and_then(Json::as_str),
            Some("overloaded") | Some("degraded")
        )
    }

    /// The jittered backoff before retry number `attempt` (0-based):
    /// `base·2^attempt` capped at `max_backoff`, scaled to 50–100% by a
    /// splitmix64 draw over `(seed, attempt)` — deterministic per
    /// policy, decorrelated across seeds.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_backoff);
        let mut z = self
            .seed
            .wrapping_add((attempt as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let frac = (z % 1000) as f64 / 1000.0;
        exp.mul_f64(0.5 + frac / 2.0)
    }

    /// Plans the sleep before retry number `attempt` (0-based) given the
    /// time already `elapsed` since the first attempt started. `None`
    /// means give up: the attempt cap is reached or the deadline budget
    /// is already spent. A planned sleep is clamped to the remaining
    /// budget, so `elapsed + sleep` never exceeds `deadline`.
    pub fn next_delay(&self, attempt: u32, elapsed: Duration) -> Option<Duration> {
        if attempt + 1 >= self.max_attempts.max(1) || elapsed >= self.deadline {
            return None;
        }
        Some(self.backoff(attempt).min(self.deadline - elapsed))
    }
}

/// A framed-TCP client with transparent reconnect and policy-driven
/// retry — the degraded-mode-aware client the chaos harness drives.
pub struct RetryingClient {
    addr: String,
    policy: RetryPolicy,
    client: Option<NetClient>,
    retries: u64,
}

impl RetryingClient {
    /// Creates the client; the first connection is made lazily so a
    /// server mid-restart does not fail construction.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> RetryingClient {
        RetryingClient {
            addr: addr.into(),
            policy,
            client: None,
            retries: 0,
        }
    }

    /// Retries performed across all requests so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    fn connected(&mut self) -> Result<&mut NetClient, ClientError> {
        if self.client.is_none() {
            self.client = Some(NetClient::connect(&self.addr)?);
        }
        Ok(self.client.as_mut().expect("client just set"))
    }

    /// Issues `request`, retrying per the policy. Explicit
    /// `overloaded`/`degraded` rejections are retried for any op; when
    /// the budget runs out the *last rejection* is returned as the
    /// response (callers see the typed error, not a transport failure).
    /// Transport errors drop the connection and are retried only for
    /// idempotent ops; otherwise they surface immediately.
    pub fn request(&mut self, request: &Json) -> Result<Json, ClientError> {
        let op = request
            .get("op")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let started = Instant::now();
        let mut attempt = 0u32;
        loop {
            let outcome = self.connected().and_then(|c| c.request(request));
            let delay = match &outcome {
                Ok(response) if RetryPolicy::response_retryable(response) => {
                    self.policy.next_delay(attempt, started.elapsed())
                }
                Ok(_) => return outcome,
                Err(_) => {
                    // The connection is suspect after any transport
                    // error; the next attempt reconnects.
                    self.client = None;
                    if RetryPolicy::is_idempotent(&op) {
                        self.policy.next_delay(attempt, started.elapsed())
                    } else {
                        None
                    }
                }
            };
            match delay {
                Some(delay) => {
                    std::thread::sleep(delay);
                    self.retries += 1;
                    attempt += 1;
                }
                None => return outcome,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_backoff_schedule_is_reproducible_and_jittered() {
        let policy = RetryPolicy::default();
        let again = RetryPolicy::default();
        let schedule: Vec<Duration> = (0..6).map(|i| policy.backoff(i)).collect();
        let replay: Vec<Duration> = (0..6).map(|i| again.backoff(i)).collect();
        assert_eq!(schedule, replay, "same policy must replay identically");

        // Each step stays inside [50%, 100%] of the capped exponential.
        for (i, &d) in schedule.iter().enumerate() {
            let exp = policy
                .base_backoff
                .saturating_mul(1 << i)
                .min(policy.max_backoff);
            assert!(
                d >= exp.mul_f64(0.5) && d <= exp,
                "step {i}: {d:?} vs {exp:?}"
            );
        }
        // A different seed decorrelates the schedule.
        let other = RetryPolicy {
            seed: 7,
            ..RetryPolicy::default()
        };
        let decorrelated: Vec<Duration> = (0..6).map(|i| other.backoff(i)).collect();
        assert_ne!(schedule, decorrelated);
        // The cap holds far out.
        assert!(policy.backoff(40) <= policy.max_backoff);
    }

    #[test]
    fn next_delay_respects_deadline_budget_exactly() {
        let policy = RetryPolicy {
            max_attempts: 100,
            base_backoff: Duration::from_millis(400),
            max_backoff: Duration::from_secs(2),
            deadline: Duration::from_millis(1000),
            seed: 42,
        };
        // Inside the budget: the sleep is clamped so sleep-end == the
        // deadline at most.
        let elapsed = Duration::from_millis(900);
        let delay = policy.next_delay(0, elapsed).expect("budget remains");
        assert!(elapsed + delay <= policy.deadline);
        assert_eq!(
            policy.next_delay(3, Duration::from_millis(999)),
            Some(policy.backoff(3).min(Duration::from_millis(1))),
        );
        // At (or past) the deadline: no retry, exactly.
        assert_eq!(policy.next_delay(0, Duration::from_millis(1000)), None);
        assert_eq!(policy.next_delay(0, Duration::from_millis(1001)), None);
        // Attempt cap: attempt numbers are 0-based, max_attempts counts
        // the first try.
        let two = RetryPolicy {
            max_attempts: 2,
            ..policy
        };
        assert!(two.next_delay(0, Duration::ZERO).is_some());
        assert_eq!(two.next_delay(1, Duration::ZERO), None);
        let one = RetryPolicy {
            max_attempts: 1,
            ..policy
        };
        assert_eq!(one.next_delay(0, Duration::ZERO), None);
    }

    #[test]
    fn transport_retry_is_denied_for_non_idempotent_ops() {
        for op in ["append_rows", "register", "refresh", "drop", "shutdown", ""] {
            assert!(
                !RetryPolicy::is_idempotent(op),
                "{op:?} must not auto-retry"
            );
        }
        for op in [
            "query",
            "estimate_multi",
            "stats",
            "list",
            "health",
            "server_stats",
        ] {
            assert!(RetryPolicy::is_idempotent(op), "{op:?} should auto-retry");
        }
        // A refused-without-executing rejection is retryable for any op.
        let degraded = Json::obj([
            ("ok", Json::Bool(false)),
            ("error", Json::str("degraded")),
            ("reason", Json::str("WAL fsync: No space left on device")),
        ]);
        assert!(RetryPolicy::response_retryable(&degraded));
        let overloaded = Json::obj([
            ("ok", Json::Bool(false)),
            ("error", Json::str("overloaded")),
        ]);
        assert!(RetryPolicy::response_retryable(&overloaded));
        // Ordinary errors and successes are not.
        let bad = Json::obj([
            ("ok", Json::Bool(false)),
            ("error", Json::str("missing \"dataset\" field")),
        ]);
        assert!(!RetryPolicy::response_retryable(&bad));
        let ok = Json::obj([("ok", Json::Bool(true))]);
        assert!(!RetryPolicy::response_retryable(&ok));
    }
}
