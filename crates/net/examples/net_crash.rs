//! Crash-recovery client for a durable `pclabel-netd` (used by
//! `ci/crash_recovery.sh`).
//!
//! The harness SIGKILLs the daemon mid-append-burst and restarts it on
//! the same `--data-dir`; this client drives each phase:
//!
//! ```text
//! net_crash prepare ADDR           register census (figure2, bound 5)
//! net_crash burst ADDR             append one row per request until the
//!                                  connection dies under it; prints
//!                                  "acked N" after every acknowledged
//!                                  append so the harness knows the
//!                                  durable floor at kill time
//! net_crash verify ADDR ACKED      assert the recovered row count is
//!                                  18+ACKED or 18+ACKED+1 (every acked
//!                                  append survived; at most the one
//!                                  in-flight append may also have), the
//!                                  recovered label answers queries, and
//!                                  server_stats carries the durability
//!                                  section
//! net_crash dump ADDR              print a deterministic state dump
//!                                  (query batch + per-dataset stats)
//!                                  then ask the daemon to shut down —
//!                                  two dumps from two fresh recoveries
//!                                  of the same directory must be
//!                                  byte-identical (per-session state
//!                                  like the query cache counts, so each
//!                                  dump needs its own boot)
//! net_crash shutdown ADDR          ask the daemon to shut down cleanly
//! ```

use pclabel_engine::json::Json;
use pclabel_net::client::{HttpClient, NetClient};

fn usage() -> ! {
    eprintln!("usage: net_crash prepare|burst|dump|shutdown ADDR | verify ADDR ACKED");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, addr) = match (args.first(), args.get(1)) {
        (Some(cmd), Some(addr)) => (cmd.as_str(), addr.as_str()),
        _ => usage(),
    };
    match cmd {
        "prepare" => prepare(addr),
        "burst" => burst(addr),
        "verify" => {
            let acked = args
                .get(2)
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or_else(|| usage());
            verify(addr, acked);
        }
        "dump" => dump(addr),
        "shutdown" => {
            let mut client = NetClient::connect(addr).expect("connect to pclabel-netd");
            shutdown(&mut client);
        }
        _ => usage(),
    }
}

fn shutdown(client: &mut NetClient) {
    let response = client
        .request_line(r#"{"op":"shutdown"}"#)
        .expect("shutdown round-trip");
    let parsed = Json::parse(&response).expect("shutdown response JSON");
    assert_eq!(
        parsed.get("ok"),
        Some(&Json::Bool(true)),
        "shutdown refused: {response}"
    );
}

fn prepare(addr: &str) {
    let mut client = NetClient::connect(addr).expect("connect to pclabel-netd");
    let response = client
        .request_line(r#"{"op":"register","dataset":"census","generator":"figure2","bound":5}"#)
        .expect("register round-trip");
    let parsed = Json::parse(&response).expect("register response JSON");
    assert_eq!(
        parsed.get("ok"),
        Some(&Json::Bool(true)),
        "register failed: {response}"
    );
    println!("net_crash: prepared (census registered)");
}

/// One appended row per request. Every "acked N" line on stdout means
/// the daemon acknowledged append N — under `--fsync always` that row
/// is durable and MUST survive the SIGKILL the harness delivers while
/// this loop is running. The loop ends when the connection dies —
/// the daemon was killed under us, which is exactly the point.
fn burst(addr: &str) {
    let mut client = NetClient::connect(addr).expect("connect to pclabel-netd");
    let request = r#"{"op":"append_rows","dataset":"census","rows":[["Female","20-39","Caucasian","married"]]}"#;
    let mut acked: u64 = 0;
    while let Ok(response) = client.request_line(request) {
        match Json::parse(&response) {
            Ok(parsed) if parsed.get("ok") == Some(&Json::Bool(true)) => {
                acked += 1;
                println!("acked {acked}");
            }
            _ => panic!("append refused before the kill: {response}"),
        }
    }
    println!("net_crash: burst ended after {acked} acked appends");
}

fn verify(addr: &str, acked: u64) {
    // figure2_sample has 18 rows; each acked burst append added one.
    let min_rows = 18 + acked;
    let mut http = HttpClient::connect(addr).expect("HTTP connect");

    // Recovered row count: every acked append survived; at most the one
    // append in flight at kill time may have landed as well.
    let stats = http
        .request("GET", "/stats?dataset=census", None)
        .expect("GET /stats");
    assert_eq!(stats.status, 200, "stats: {}", stats.body);
    let parsed = Json::parse(&stats.body).expect("stats JSON");
    let rows = parsed
        .get("rows")
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats carries no row count: {}", stats.body));
    assert!(
        rows == min_rows || rows == min_rows + 1,
        "recovered {rows} rows; acked appends guarantee {min_rows} (+1 in-flight at most)"
    );

    // The recovered label still answers queries. The probed pattern
    // avoids the values the burst appends, so its estimate is finite
    // and stable no matter where the kill landed.
    let mut client = NetClient::connect(addr).expect("framed connect");
    let response = client
        .request_line(
            r#"{"op":"query","dataset":"census","patterns":[{"gender":"Male","age group":"under 20"}]}"#,
        )
        .expect("query round-trip");
    let parsed = Json::parse(&response).expect("query response JSON");
    let estimate = parsed
        .get("results")
        .and_then(Json::as_array)
        .and_then(|r| r[0].get("estimate"))
        .and_then(Json::as_f64);
    assert!(
        estimate.is_some_and(|e| e.is_finite()),
        "recovered label cannot answer queries: {response}"
    );

    // The durability plane must be live and reporting.
    let server_stats = http
        .request("POST", "/server_stats", Some("{}"))
        .expect("POST /server_stats");
    assert_eq!(
        server_stats.status, 200,
        "server_stats: {}",
        server_stats.body
    );
    let parsed = Json::parse(&server_stats.body).expect("server_stats JSON");
    let durability = parsed
        .get("durability")
        .unwrap_or_else(|| panic!("no durability section: {}", server_stats.body));
    // One register record plus one record per acked append must have
    // been trusted by replay.
    let last_lsn = durability
        .get("last_lsn")
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("no last_lsn: {}", server_stats.body));
    let lsn_floor = 1 + acked;
    assert!(
        last_lsn >= lsn_floor,
        "last_lsn {last_lsn} below the acked floor {lsn_floor}"
    );

    println!("net_crash: verified ({rows} rows recovered, last_lsn {last_lsn})");
}

/// Deterministic state dump: the same requests in the same order from a
/// fresh recovery must print the same bytes every time. Ends with a
/// shutdown op so the harness can restart the daemon cleanly.
fn dump(addr: &str) {
    let mut client = NetClient::connect(addr).expect("connect to pclabel-netd");
    for request in [
        r#"{"op":"query","dataset":"census","patterns":[{"gender":"Female","age group":"20-39","marital status":"married"},{"gender":"Male"},{"race":"Hispanic","marital status":"single"}]}"#,
        r#"{"op":"stats","dataset":"census"}"#,
    ] {
        let response = client.request_line(request).expect("dump round-trip");
        println!("{response}");
    }
    shutdown(&mut client);
}
