//! Soak client for a running `pclabel-netd`: parks N idle keep-alive
//! connections, then asserts a fresh client still completes a
//! register + query round-trip within a deadline.
//!
//! This is the regression gate for the event-driven reactor. Under the
//! thread-pool model, N ≥ workers idle connections pin every worker and
//! this program times out; under `--model reactor` it must pass with
//! any N. `ci/net_soak.sh` runs it with `workers + 4` idle connections
//! and a 2 s deadline.
//!
//! Ends with `{"op":"shutdown"}` (requires `--allow-remote-shutdown`).
//!
//! ```text
//! net_soak ADDR IDLE_CONNS [DEADLINE_MS]
//! ```

use std::time::{Duration, Instant};

use pclabel_engine::json::Json;
use pclabel_net::client::NetClient;

fn main() {
    let mut args = std::env::args().skip(1);
    let usage = "usage: net_soak ADDR IDLE_CONNS [DEADLINE_MS]";
    let addr = args.next().unwrap_or_else(|| panic!("{usage}"));
    let idle_conns: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("{usage}"));
    let deadline = Duration::from_millis(
        args.next()
            .map(|s| s.parse().expect("DEADLINE_MS must be an integer"))
            .unwrap_or(2000),
    );

    // Park the idle fleet. Each connection completes one request first,
    // so the server has fully adopted it (sniffed, served, keep-alive)
    // before it goes quiet.
    let mut parked = Vec::with_capacity(idle_conns);
    for i in 0..idle_conns {
        let mut client = NetClient::connect(&addr)
            .unwrap_or_else(|e| panic!("idle connection {i} failed to connect: {e}"));
        let health = client
            .request_line(r#"{"op":"health"}"#)
            .unwrap_or_else(|e| panic!("idle connection {i} health: {e}"));
        assert_eq!(
            Json::parse(&health).expect("health JSON").get("ok"),
            Some(&Json::Bool(true)),
            "idle connection {i}: {health}"
        );
        parked.push(client);
    }

    // The fresh client must complete a full register + query round-trip
    // within the deadline, idle fleet notwithstanding.
    let start = Instant::now();
    let mut fresh = NetClient::connect(&addr).expect("fresh client connects");
    fresh
        .set_timeout(Some(deadline))
        .expect("set fresh client timeout");
    let register = fresh
        .request_line(r#"{"op":"register","dataset":"census","generator":"figure2","bound":5}"#)
        .unwrap_or_else(|e| panic!("register starved behind {idle_conns} idle connections: {e}"));
    assert_eq!(
        Json::parse(&register).expect("register JSON").get("ok"),
        Some(&Json::Bool(true)),
        "register failed: {register}"
    );
    // Paper Example 2.12: the estimate must be exactly 3.
    let query = fresh
        .request_line(
            r#"{"op":"query","dataset":"census","patterns":[{"gender":"Female","age group":"20-39","marital status":"married"}]}"#,
        )
        .unwrap_or_else(|e| panic!("query starved behind {idle_conns} idle connections: {e}"));
    let estimate = Json::parse(&query)
        .expect("query JSON")
        .get("results")
        .and_then(Json::as_array)
        .and_then(|r| r[0].get("estimate"))
        .and_then(Json::as_f64);
    assert_eq!(estimate, Some(3.0), "unexpected query response: {query}");
    let elapsed = start.elapsed();
    assert!(
        elapsed <= deadline,
        "round-trip took {elapsed:?}, over the {deadline:?} deadline"
    );

    // The parked fleet must still be alive (idle ≠ dropped).
    for (i, client) in parked.iter_mut().enumerate() {
        let health = client
            .request_line(r#"{"op":"health"}"#)
            .unwrap_or_else(|e| panic!("idle connection {i} died during the soak: {e}"));
        assert_eq!(
            Json::parse(&health).expect("health JSON").get("ok"),
            Some(&Json::Bool(true))
        );
    }

    // Transport gauges through the wire op: every parked connection is
    // idle between requests, so nothing may be waiting for a worker and
    // nothing may have been evicted. ci/net_soak.sh greps this line.
    let stats = fresh
        .request_line(r#"{"op":"server_stats"}"#)
        .expect("server_stats round-trip");
    let stats = Json::parse(&stats).expect("server_stats JSON");
    assert_eq!(
        stats.get("ok"),
        Some(&Json::Bool(true)),
        "server_stats failed: {stats}"
    );
    let series = |group: &str, name: &str| {
        stats
            .get(group)
            .and_then(|g| g.get(name))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("missing {group} series {name}: {stats}"))
    };
    println!(
        "net_soak: gauges open_connections={} parked_jobs={} evictions={} overloaded={}",
        series("gauges", "pclabel_net_open_connections"),
        series("gauges", "pclabel_net_parked_jobs"),
        series("counters", "pclabel_net_evictions_total"),
        series("counters", "pclabel_net_overloaded_total"),
    );

    // Trace retention stays bounded: the soak pushed 2 × IDLE_CONNS
    // health requests through the daemon, far more than the ring
    // capacity ci/net_soak.sh starts it with, so both rings must sit at
    // or under `retained_per_op`. The script greps this line.
    let mut ring_len = |request: &str| -> (u64, usize) {
        let debug = fresh
            .request_line(request)
            .expect("server_debug round-trip");
        let debug = Json::parse(&debug).expect("server_debug JSON");
        assert_eq!(
            debug.get("ok"),
            Some(&Json::Bool(true)),
            "server_debug failed: {debug}"
        );
        let traces = debug.get("traces").expect("traces section");
        let capacity = traces
            .get("retained_per_op")
            .and_then(Json::as_u64)
            .expect("retained_per_op");
        let len = traces
            .get("traces")
            .and_then(Json::as_array)
            .expect("trace array")
            .len();
        (capacity, len)
    };
    let (capacity, recent) = ring_len(r#"{"op":"server_debug","trace_op":"health"}"#);
    let (_, slowest) = ring_len(r#"{"op":"server_debug","trace_op":"health","slowest":true}"#);
    let health_requests = 2 * idle_conns;
    assert!(
        recent as u64 <= capacity && slowest as u64 <= capacity,
        "trace rings exceeded their bound: {recent} recent / {slowest} slowest > {capacity}"
    );
    assert!(recent > 0, "no health traces retained");
    println!(
        "net_soak: traces retained_per_op={capacity} health_requests={health_requests} \
         recent={recent} slowest={slowest}"
    );

    let shutdown = fresh
        .request_line(r#"{"op":"shutdown"}"#)
        .expect("shutdown round-trip");
    assert_eq!(
        Json::parse(&shutdown).expect("shutdown JSON").get("ok"),
        Some(&Json::Bool(true)),
        "shutdown refused: {shutdown}"
    );

    println!("net_soak: ok ({idle_conns} idle connections, fresh round-trip in {elapsed:?})");
}
