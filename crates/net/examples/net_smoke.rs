//! Smoke client for a running `pclabel-netd` (used by `ci/net_smoke.sh`).
//!
//! Round-trips a register + query over the framed TCP protocol, probes
//! `/healthz` over HTTP on the same port, then asks the server to shut
//! down (requires `--allow-remote-shutdown`). Exits non-zero on any
//! mismatch.
//!
//! ```text
//! net_smoke 127.0.0.1:7341
//! ```

use pclabel_engine::json::Json;
use pclabel_net::client::{HttpClient, NetClient};

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| panic!("usage: net_smoke ADDR"));

    let mut client = NetClient::connect(&addr).expect("connect to pclabel-netd");

    let register = client
        .request_line(r#"{"op":"register","dataset":"census","generator":"figure2","bound":5}"#)
        .expect("register round-trip");
    let parsed = Json::parse(&register).expect("register response JSON");
    assert_eq!(
        parsed.get("ok"),
        Some(&Json::Bool(true)),
        "register failed: {register}"
    );

    // Paper Example 2.12: the estimate must be exactly 3.
    let query = client
        .request_line(
            r#"{"op":"query","dataset":"census","patterns":[{"gender":"Female","age group":"20-39","marital status":"married"}]}"#,
        )
        .expect("query round-trip");
    let parsed = Json::parse(&query).expect("query response JSON");
    let estimate = parsed
        .get("results")
        .and_then(Json::as_array)
        .and_then(|r| r[0].get("estimate"))
        .and_then(Json::as_f64);
    assert_eq!(estimate, Some(3.0), "unexpected query response: {query}");

    // The same port speaks HTTP.
    let mut http = HttpClient::connect(&addr).expect("HTTP connect");
    let health = http.request("GET", "/healthz", None).expect("GET /healthz");
    assert_eq!(health.status, 200, "healthz: {}", health.body);
    let parsed = Json::parse(&health.body).expect("healthz JSON");
    assert_eq!(
        parsed.get("datasets").and_then(Json::as_u64),
        Some(1),
        "healthz: {}",
        health.body
    );

    let shutdown = client
        .request_line(r#"{"op":"shutdown"}"#)
        .expect("shutdown round-trip");
    let parsed = Json::parse(&shutdown).expect("shutdown response JSON");
    assert_eq!(
        parsed.get("ok"),
        Some(&Json::Bool(true)),
        "shutdown refused: {shutdown}"
    );

    println!("net_smoke: ok (register + query + healthz + shutdown)");
}
