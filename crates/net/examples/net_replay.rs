//! Replay client for a running `pclabel-netd`: sends a fixed request
//! script over framed TCP, then the same script again over HTTP
//! (`POST /`), printing every response body to stdout, one per line.
//!
//! `ci/net_smoke.sh` runs this against a `--model pool` daemon and a
//! `--model reactor` daemon and diffs the outputs: the two connection
//! models must be byte-identical for the same request stream. The
//! script mixes ops, failure paths, and non-JSON garbage so the diff
//! covers dispatch errors as well as happy paths; it runs each op
//! sequence against one long-lived daemon, so per-dataset state
//! (generations, cache counters) evolves — identically — under both
//! models.
//!
//! Ends with `{"op":"shutdown"}` (requires `--allow-remote-shutdown`),
//! whose response is printed too.
//!
//! ```text
//! net_replay 127.0.0.1:7341
//! ```

use pclabel_engine::json::Json;
use pclabel_net::client::{HttpClient, NetClient};

/// Zeroes the one legitimately non-deterministic response field
/// (`health`'s `uptime_seconds`) so the cross-model diff stays
/// byte-exact; everything else is printed verbatim.
fn canon(line: &str) -> String {
    match Json::parse(line) {
        Ok(Json::Obj(mut members)) => {
            for (key, value) in members.iter_mut() {
                if key == "uptime_seconds" {
                    *value = Json::num(0.0);
                }
            }
            Json::Obj(members).to_string()
        }
        _ => line.to_string(),
    }
}

fn script() -> Vec<&'static str> {
    vec![
        r#"{"op":"register","dataset":"census","generator":"figure2","bound":5}"#,
        r#"{"op":"register","dataset":"b","generator":"figure2","label_attrs":["gender","age group"]}"#,
        r#"{"op":"query","dataset":"census","id":"q1","patterns":[{"gender":"Female","age group":"20-39","marital status":"married"},{"age group":"20-39"}]}"#,
        r#"{"op":"query","dataset":"census","patterns":[{"age group":"20-39"}]}"#,
        r#"{"op":"estimate_multi","strategy":"min_estimate","patterns":[{"gender":"Female","age group":"20-39","marital status":"married"}]}"#,
        r#"{"op":"estimate_multi","patterns":[{"no such attr":"x"}]}"#,
        "not json",
        r#"{"op":"teleport"}"#,
        r#"{"op":"refresh","dataset":"b","label_attrs":["marital status"]}"#,
        r#"{"op":"stats","dataset":"census"}"#,
        r#"{"op":"list"}"#,
        r#"{"op":"health"}"#,
        r#"{"op":"drop","dataset":"b"}"#,
    ]
}

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| panic!("usage: net_replay ADDR"));

    let mut framed = NetClient::connect(&addr).expect("framed connect");
    for line in script() {
        let response = framed.request_line(line).expect("framed round-trip");
        println!("framed {}", canon(&response));
    }

    let mut http = HttpClient::connect(&addr).expect("HTTP connect");
    for line in script() {
        let response = http
            .request("POST", "/", Some(line))
            .expect("HTTP round-trip");
        println!("http {} {}", response.status, canon(&response.body));
    }
    let health = http.request("GET", "/healthz", None).expect("GET /healthz");
    println!("http {} {}", health.status, canon(&health.body));

    // Optional telemetry dump for ci/net_smoke.sh: scrape /metrics into
    // a file, keeping stdout byte-identical across connection models.
    if let Ok(path) = std::env::var("PCLABEL_REPLAY_METRICS_OUT") {
        if !path.is_empty() {
            let scrape = http.request("GET", "/metrics", None).expect("GET /metrics");
            assert_eq!(scrape.status, 200, "metrics scrape failed");
            std::fs::write(&path, scrape.body).expect("write metrics dump");
        }
    }

    // Optional introspection dump for ci/net_smoke.sh: fetch the three
    // /debug routes (conns, memory, retained traces) into a file, one
    // `PATH BODY` line each, while both replay connections are still
    // open — so the conn table must see exactly this client pair.
    if let Ok(path) = std::env::var("PCLABEL_REPLAY_DEBUG_OUT") {
        if !path.is_empty() {
            let mut dump = String::new();
            for route in ["/debug/conns", "/debug/memory", "/debug/traces?op=query"] {
                let scrape = http.request("GET", route, None).expect("GET debug route");
                assert_eq!(scrape.status, 200, "debug scrape failed on {route}");
                dump.push_str(&format!("{route} {}\n", scrape.body));
            }
            std::fs::write(&path, dump).expect("write debug dump");
        }
    }

    let bye = framed
        .request_line(r#"{"op":"shutdown"}"#)
        .expect("shutdown round-trip");
    println!("framed {}", canon(&bye));
}
