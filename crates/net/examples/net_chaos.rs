//! Chaos client for a durable `pclabel-netd` under fault injection
//! (used by `ci/chaos_soak.sh`).
//!
//! The harness boots the daemon with `PCLABEL_FAULT_PLAN` opening an
//! ENOSPC/EIO window a moment into the run; this client drives each
//! phase and asserts graceful degradation end to end:
//!
//! ```text
//! net_chaos prepare ADDR           register census (figure2, bound 5)
//! net_chaos soak ADDR SECONDS      run SECONDS of concurrent load:
//!                                  a writer appending one row per
//!                                  request through a RetryingClient
//!                                  (prints "acked N" per acknowledged
//!                                  append), an HTTP query thread
//!                                  asserting every read answers 200
//!                                  throughout, and a /healthz poller.
//!                                  Asserts the fault window was
//!                                  observed (degraded rejections and a
//!                                  503 /healthz) and that the store
//!                                  returned to read-write on its own
//!                                  after the window closed.
//! net_chaos verify ADDR ACKED     after a fresh reboot: exactly
//!                                  18+ACKED rows survived (no acked
//!                                  mutation lost, no unacked ghost
//!                                  replayed), queries answer, and the
//!                                  health section reports "ok".
//! net_chaos dump ADDR              deterministic state dump + shutdown
//!                                  (byte-identical across two fresh
//!                                  boots of the same directory).
//! net_chaos shutdown ADDR          ask the daemon to shut down.
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pclabel_engine::json::Json;
use pclabel_net::client::{HttpClient, NetClient, RetryPolicy, RetryingClient};

fn usage() -> ! {
    eprintln!(
        "usage: net_chaos prepare|dump|shutdown ADDR | soak ADDR SECONDS | verify ADDR ACKED"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, addr) = match (args.first(), args.get(1)) {
        (Some(cmd), Some(addr)) => (cmd.as_str(), addr.as_str()),
        _ => usage(),
    };
    match cmd {
        "prepare" => prepare(addr),
        "soak" => {
            let secs = args
                .get(2)
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or_else(|| usage());
            soak(addr, secs);
        }
        "verify" => {
            let acked = args
                .get(2)
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or_else(|| usage());
            verify(addr, acked);
        }
        "dump" => dump(addr),
        "shutdown" => {
            let mut client = NetClient::connect(addr).expect("connect to pclabel-netd");
            shutdown(&mut client);
        }
        _ => usage(),
    }
}

fn shutdown(client: &mut NetClient) {
    let response = client
        .request_line(r#"{"op":"shutdown"}"#)
        .expect("shutdown round-trip");
    let parsed = Json::parse(&response).expect("shutdown response JSON");
    assert_eq!(
        parsed.get("ok"),
        Some(&Json::Bool(true)),
        "shutdown refused: {response}"
    );
}

fn prepare(addr: &str) {
    let mut client = NetClient::connect(addr).expect("connect to pclabel-netd");
    let response = client
        .request_line(r#"{"op":"register","dataset":"census","generator":"figure2","bound":5}"#)
        .expect("register round-trip");
    let parsed = Json::parse(&response).expect("register response JSON");
    assert_eq!(
        parsed.get("ok"),
        Some(&Json::Bool(true)),
        "register failed: {response}"
    );
    println!("net_chaos: prepared (census registered)");
}

/// The soak: concurrent mutate + query load across the fault window.
///
/// Writer rules: an acknowledged append is printed as "acked N" (the
/// harness counts these as the durable floor); a typed degraded
/// rejection is expected during the window and simply retried later;
/// anything else is a failure. Queries must answer 200 the whole time —
/// read availability through the outage is the point of degraded mode.
fn soak(addr: &str, secs: u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let saw_degraded = Arc::new(AtomicBool::new(false));
    let saw_503 = Arc::new(AtomicBool::new(false));
    let queries_ok = Arc::new(AtomicU64::new(0));

    // /healthz poller: flips saw_503 during the outage; never 5xx other
    // than the expected 503-while-degraded.
    let health_thread = {
        let stop = Arc::clone(&stop);
        let saw_503 = Arc::clone(&saw_503);
        let addr = addr.to_string();
        std::thread::spawn(move || {
            let mut http = HttpClient::connect(&addr).expect("healthz connect");
            while !stop.load(Ordering::Relaxed) {
                let response = match http.request("GET", "/healthz", None) {
                    Ok(response) => response,
                    Err(_) => {
                        // Reconnect once; the daemon must stay up.
                        http = HttpClient::connect(&addr).expect("healthz reconnect");
                        continue;
                    }
                };
                match response.status {
                    200 => {}
                    503 => {
                        assert!(
                            response.body.contains("degraded"),
                            "503 without a degraded body: {}",
                            response.body
                        );
                        saw_503.store(true, Ordering::Relaxed);
                    }
                    other => panic!("/healthz answered {other}: {}", response.body),
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        })
    };

    // Query thread: reads must be served for the entire soak, degraded
    // or not — any non-200 fails the gate.
    let query_thread = {
        let stop = Arc::clone(&stop);
        let queries_ok = Arc::clone(&queries_ok);
        let addr = addr.to_string();
        std::thread::spawn(move || {
            let mut http = HttpClient::connect(&addr).expect("query connect");
            while !stop.load(Ordering::Relaxed) {
                let response = match http.request("GET", "/stats?dataset=census", None) {
                    Ok(response) => response,
                    Err(_) => {
                        http = HttpClient::connect(&addr).expect("query reconnect");
                        continue;
                    }
                };
                assert_eq!(
                    response.status, 200,
                    "query failed during soak: {}",
                    response.body
                );
                queries_ok.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(20));
            }
        })
    };

    // Writer: short retry budget so the loop observes the degraded
    // window instead of blocking inside one request.
    let policy = RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_millis(25),
        max_backoff: Duration::from_millis(200),
        deadline: Duration::from_millis(600),
        seed: 0xc4a05,
    };
    let mut writer = RetryingClient::new(addr, policy);
    let request = Json::parse(
        r#"{"op":"append_rows","dataset":"census","rows":[["Female","20-39","Caucasian","married"]]}"#,
    )
    .expect("append request JSON");
    let mut acked: u64 = 0;
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        let response = writer.request(&request).expect("append transport");
        if response.get("ok") == Some(&Json::Bool(true)) {
            acked += 1;
            println!("acked {acked}");
            // Throttle: the gate needs coverage of the window, not a
            // throughput record — an unthrottled writer acks tens of
            // thousands of rows and bloats the reboot replay.
            std::thread::sleep(Duration::from_millis(2));
        } else if response.get("error") == Some(&Json::str("degraded")) {
            saw_degraded.store(true, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(25));
        } else {
            panic!("append refused outside degraded mode: {response}");
        }
    }

    // The window is closed: the store must return to read-write on its
    // own (probe thread heals; no operator action).
    let recovered_by = Instant::now() + Duration::from_secs(30);
    loop {
        let response = writer.request(&request).expect("append transport");
        if response.get("ok") == Some(&Json::Bool(true)) {
            acked += 1;
            println!("acked {acked}");
            break;
        }
        assert!(
            Instant::now() < recovered_by,
            "store did not return to read-write after the fault window: {response}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    stop.store(true, Ordering::Relaxed);
    health_thread.join().expect("healthz thread");
    query_thread.join().expect("query thread");

    assert!(
        saw_degraded.load(Ordering::Relaxed),
        "the fault window was never observed by the writer — the soak proved nothing"
    );
    assert!(
        saw_503.load(Ordering::Relaxed),
        "/healthz never answered 503 during the fault window"
    );
    let reads = queries_ok.load(Ordering::Relaxed);
    assert!(reads > 0, "no successful reads during the soak");
    println!(
        "net_chaos: soak done acked={acked} reads={reads} retries={}",
        writer.retries()
    );
}

fn verify(addr: &str, acked: u64) {
    // figure2_sample has 18 rows. No kill is involved in the chaos
    // soak, so the count is exact: every acked append survived and no
    // unacknowledged (rolled-back) append replayed.
    let want_rows = 18 + acked;
    let mut http = HttpClient::connect(addr).expect("HTTP connect");

    let stats = http
        .request("GET", "/stats?dataset=census", None)
        .expect("GET /stats");
    assert_eq!(stats.status, 200, "stats: {}", stats.body);
    let parsed = Json::parse(&stats.body).expect("stats JSON");
    let rows = parsed
        .get("rows")
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats carries no row count: {}", stats.body));
    assert_eq!(
        rows, want_rows,
        "recovered {rows} rows; {acked} acked appends over 18 base rows demand exactly {want_rows}"
    );

    // The recovered label answers queries.
    let mut client = NetClient::connect(addr).expect("framed connect");
    let response = client
        .request_line(
            r#"{"op":"query","dataset":"census","patterns":[{"gender":"Male","age group":"under 20"}]}"#,
        )
        .expect("query round-trip");
    let parsed = Json::parse(&response).expect("query response JSON");
    let estimate = parsed
        .get("results")
        .and_then(Json::as_array)
        .and_then(|r| r[0].get("estimate"))
        .and_then(Json::as_f64);
    assert!(
        estimate.is_some_and(|e| e.is_finite()),
        "recovered label cannot answer queries: {response}"
    );

    // Health is clean on the fresh boot and the durability plane is
    // reporting a plausible LSN floor.
    let server_stats = http
        .request("POST", "/server_stats", Some("{}"))
        .expect("POST /server_stats");
    assert_eq!(
        server_stats.status, 200,
        "server_stats: {}",
        server_stats.body
    );
    let parsed = Json::parse(&server_stats.body).expect("server_stats JSON");
    let health = parsed
        .get("health")
        .unwrap_or_else(|| panic!("no health section: {}", server_stats.body));
    assert_eq!(
        health.get("state"),
        Some(&Json::str("ok")),
        "fresh boot is not healthy: {health}"
    );
    let durability = parsed
        .get("durability")
        .unwrap_or_else(|| panic!("no durability section: {}", server_stats.body));
    let last_lsn = durability
        .get("last_lsn")
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("no last_lsn: {}", server_stats.body));
    let lsn_floor = 1 + acked;
    assert!(
        last_lsn >= lsn_floor,
        "last_lsn {last_lsn} below the acked floor {lsn_floor}"
    );

    println!("net_chaos: verified ({rows} rows recovered, last_lsn {last_lsn})");
}

/// Deterministic state dump (same shape as `net_crash dump`): the same
/// requests from a fresh recovery must print the same bytes every time.
fn dump(addr: &str) {
    let mut client = NetClient::connect(addr).expect("connect to pclabel-netd");
    for request in [
        r#"{"op":"query","dataset":"census","patterns":[{"gender":"Female","age group":"20-39","marital status":"married"},{"gender":"Male"},{"race":"Hispanic","marital status":"single"}]}"#,
        r#"{"op":"stats","dataset":"census"}"#,
    ] {
        let response = client.request_line(request).expect("dump round-trip");
        println!("{response}");
    }
    shutdown(&mut client);
}
