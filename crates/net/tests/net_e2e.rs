//! End-to-end tests for the network front end, including the acceptance
//! criterion: the stdin/stdout serve loop (`pclabel-serve`'s code path),
//! the framed TCP transport and the HTTP adapter produce byte-identical
//! JSON responses for one replayed request script — in-process and
//! through the real `pclabel-netd` binary.

use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use pclabel_engine::json::Json;
use pclabel_engine::query::EngineConfig;
use pclabel_engine::serve::{serve, Dispatcher};
use pclabel_net::client::{HttpClient, NetClient};
use pclabel_net::server::{ConnectionModel, NetServer, ServerConfig, ServerHandle};

fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 4,
        // Short read timeout = fast shutdown polling in tests.
        read_timeout: Some(Duration::from_millis(150)),
        write_timeout: Some(Duration::from_secs(2)),
        ..ServerConfig::default()
    }
}

/// `test_config`, but served by the event-driven reactor.
fn reactor_config() -> ServerConfig {
    ServerConfig {
        model: ConnectionModel::Reactor,
        ..test_config()
    }
}

fn spawn_server(config: ServerConfig) -> ServerHandle {
    NetServer::spawn(
        Arc::new(Dispatcher::with_config(EngineConfig::default())),
        config,
    )
    .expect("spawn test server")
}

/// One request script exercising every op, success and failure paths.
/// Each transport replays it against a fresh engine, so per-dataset
/// state (generations, cache counters) evolves identically.
fn script() -> Vec<&'static str> {
    vec![
        r#"{"op":"register","dataset":"census","generator":"figure2","bound":5}"#,
        r#"{"op":"register","dataset":"b","generator":"figure2","label_attrs":["gender","age group"]}"#,
        r#"{"op":"query","dataset":"census","id":"q1","patterns":[{"gender":"Female","age group":"20-39","marital status":"married"},{"age group":"20-39"}]}"#,
        r#"{"op":"query","dataset":"census","patterns":[{"age group":"20-39"}]}"#,
        r#"{"op":"estimate_multi","strategy":"min_estimate","patterns":[{"gender":"Female","age group":"20-39","marital status":"married"}]}"#,
        r#"{"op":"estimate_multi","patterns":[{"no such attr":"x"}]}"#,
        "not json",
        r#"{"op":"teleport"}"#,
        r#"{"op":"refresh","dataset":"b","label_attrs":["marital status"]}"#,
        r#"{"op":"stats","dataset":"census"}"#,
        r#"{"op":"list"}"#,
        r#"{"op":"health"}"#,
        r#"{"op":"drop","dataset":"b"}"#,
    ]
}

/// Zeroes the non-deterministic `uptime_seconds` member (the `health`
/// op reports wall-clock uptime, which can never agree across two
/// replays) so byte-identity assertions compare everything else.
fn canon(line: &str) -> String {
    match Json::parse(line) {
        Ok(Json::Obj(mut members)) => {
            for (k, v) in members.iter_mut() {
                if k == "uptime_seconds" {
                    *v = Json::num(0.0);
                }
            }
            Json::Obj(members).to_string()
        }
        _ => line.to_string(),
    }
}

/// The script replayed through the in-process serve loop (exactly the
/// `pclabel-serve` code path).
fn stdio_responses() -> Vec<String> {
    let dispatcher = Dispatcher::with_config(EngineConfig::default());
    let input = script().join("\n");
    let mut out = Vec::new();
    serve(&dispatcher, input.as_bytes(), &mut out).expect("serve loop");
    String::from_utf8(out)
        .expect("UTF-8 output")
        .lines()
        .map(canon)
        .collect()
}

#[test]
fn framed_tcp_is_byte_identical_to_serve_loop() {
    let expected = stdio_responses();
    let server = spawn_server(test_config());
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let got: Vec<String> = script()
        .iter()
        .map(|line| canon(&client.request_line(line).expect("framed round-trip")))
        .collect();
    server.shutdown();
    assert_eq!(expected, got);
}

#[test]
fn http_generic_post_is_byte_identical_to_serve_loop() {
    let expected = stdio_responses();
    let server = spawn_server(test_config());
    let mut client = HttpClient::connect(server.local_addr()).unwrap();
    let got: Vec<String> = script()
        .iter()
        .map(|line| {
            canon(
                &client
                    .request("POST", "/", Some(line))
                    .expect("HTTP round-trip")
                    .body,
            )
        })
        .collect();
    server.shutdown();
    assert_eq!(expected, got);
}

#[test]
fn netd_binary_is_byte_identical_to_serve_loop() {
    let expected = stdio_responses();
    let mut child = Command::new(env!("CARGO_BIN_EXE_pclabel-netd"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--timeout-ms",
            "300",
            "--allow-remote-shutdown",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn pclabel-netd");
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("startup banner");
    // "pclabel-netd: listening on 127.0.0.1:PORT (2 workers)"
    let addr = banner
        .split_whitespace()
        .nth(3)
        .expect("address in banner")
        .to_string();

    let mut client = NetClient::connect(&addr).expect("connect to binary");
    let got: Vec<String> = script()
        .iter()
        .map(|line| canon(&client.request_line(line).expect("binary round-trip")))
        .collect();
    let bye = client.request_line(r#"{"op":"shutdown"}"#).unwrap();
    assert_eq!(
        Json::parse(&bye).unwrap().get("ok"),
        Some(&Json::Bool(true))
    );
    let status = child.wait().expect("netd exits");
    assert!(status.success());
    assert_eq!(expected, got);
}

/// The acceptance matrix for the reactor model: the same replay script,
/// over both transports and both readiness backends, must stay
/// byte-identical to the stdin/stdout serve loop (and therefore to the
/// pool model, which the tests above pin to the same oracle).
#[cfg(unix)]
#[test]
fn reactor_framed_and_http_are_byte_identical_to_serve_loop() {
    let expected = stdio_responses();
    for force_poll in [false, true] {
        let server = spawn_server(ServerConfig {
            force_poll_backend: force_poll,
            ..reactor_config()
        });
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        let got: Vec<String> = script()
            .iter()
            .map(|line| canon(&client.request_line(line).expect("framed round-trip")))
            .collect();
        assert_eq!(expected, got, "framed, force_poll={force_poll}");
        server.shutdown();

        let server = spawn_server(ServerConfig {
            force_poll_backend: force_poll,
            ..reactor_config()
        });
        let mut client = HttpClient::connect(server.local_addr()).unwrap();
        let got: Vec<String> = script()
            .iter()
            .map(|line| {
                canon(
                    &client
                        .request("POST", "/", Some(line))
                        .expect("HTTP round-trip")
                        .body,
                )
            })
            .collect();
        assert_eq!(expected, got, "HTTP, force_poll={force_poll}");
        server.shutdown();
    }
}

/// The regression the reactor exists to fix: with W workers, W + 4 idle
/// keep-alive connections must not stop a fresh client from completing
/// a register + query round-trip. (Under the pool model this exact
/// scenario deadlocks: every worker is pinned to an idle connection.)
#[cfg(unix)]
#[test]
fn reactor_idle_connections_do_not_starve_new_clients() {
    let workers = 2usize;
    let server = spawn_server(ServerConfig {
        workers,
        ..reactor_config()
    });

    // Park workers + 4 keep-alive connections, each proven live with one
    // request so the server has fully adopted them.
    let mut idle = Vec::new();
    for i in 0..workers + 4 {
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        let health = client.request_line(r#"{"op":"health"}"#).unwrap();
        assert_eq!(
            Json::parse(&health).unwrap().get("ok"),
            Some(&Json::Bool(true)),
            "idle conn {i}"
        );
        idle.push(client);
    }

    // A fresh client must get through within 2 s.
    let mut fresh = NetClient::connect(server.local_addr()).unwrap();
    fresh.set_timeout(Some(Duration::from_secs(2))).unwrap();
    let register = fresh
        .request_line(r#"{"op":"register","dataset":"census","generator":"figure2","bound":5}"#)
        .expect("register while workers+4 connections idle");
    assert_eq!(
        Json::parse(&register).unwrap().get("ok"),
        Some(&Json::Bool(true))
    );
    let query = fresh
        .request_line(
            r#"{"op":"query","dataset":"census","patterns":[{"gender":"Female","age group":"20-39","marital status":"married"}]}"#,
        )
        .expect("query while workers+4 connections idle");
    let estimate = Json::parse(&query)
        .unwrap()
        .get("results")
        .and_then(Json::as_array)
        .and_then(|r| r[0].get("estimate"))
        .and_then(Json::as_f64);
    assert_eq!(estimate, Some(3.0));

    // The parked connections are still alive afterwards.
    for client in idle.iter_mut() {
        let health = client.request_line(r#"{"op":"health"}"#).unwrap();
        assert_eq!(
            Json::parse(&health).unwrap().get("ok"),
            Some(&Json::Bool(true))
        );
    }
    server.shutdown();
}

/// Idle deadlines: connections quiet for longer than `idle_timeout` are
/// closed; active ones are not.
#[cfg(unix)]
#[test]
fn reactor_idle_timeout_evicts_quiet_connections() {
    // Generous margin between the chatty cadence (100 ms) and the idle
    // deadline (600 ms) so a loaded CI runner's scheduling stalls
    // cannot push an active connection over the deadline.
    let server = spawn_server(ServerConfig {
        idle_timeout: Some(Duration::from_millis(600)),
        ..reactor_config()
    });
    let mut quiet = NetClient::connect(server.local_addr()).unwrap();
    let ok = quiet.request_line(r#"{"op":"health"}"#).unwrap();
    assert_eq!(Json::parse(&ok).unwrap().get("ok"), Some(&Json::Bool(true)));

    // A connection that keeps talking stays alive across the window…
    let mut chatty = NetClient::connect(server.local_addr()).unwrap();
    for _ in 0..8 {
        std::thread::sleep(Duration::from_millis(100));
        let ok = chatty.request_line(r#"{"op":"health"}"#).unwrap();
        assert_eq!(Json::parse(&ok).unwrap().get("ok"), Some(&Json::Bool(true)));
    }
    // …while the quiet one was evicted (its next request fails).
    assert!(
        quiet.request_line(r#"{"op":"health"}"#).is_err(),
        "idle connection should have been closed by the idle deadline"
    );
    server.shutdown();
}

/// The connection cap admits newcomers by evicting the
/// least-recently-active idle connection.
#[cfg(unix)]
#[test]
fn reactor_connection_cap_evicts_lru_idle() {
    let server = spawn_server(ServerConfig {
        max_connections: 2,
        ..reactor_config()
    });
    let mut oldest = NetClient::connect(server.local_addr()).unwrap();
    oldest.request_line(r#"{"op":"health"}"#).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let mut newer = NetClient::connect(server.local_addr()).unwrap();
    newer.request_line(r#"{"op":"health"}"#).unwrap();

    // Third connection: over the cap, evicts `oldest` (the LRU idle).
    let mut third = NetClient::connect(server.local_addr()).unwrap();
    let ok = third.request_line(r#"{"op":"health"}"#).unwrap();
    assert_eq!(Json::parse(&ok).unwrap().get("ok"), Some(&Json::Bool(true)));
    assert_eq!(
        Json::parse(&newer.request_line(r#"{"op":"health"}"#).unwrap())
            .unwrap()
            .get("ok"),
        Some(&Json::Bool(true)),
        "newer idle connection must survive"
    );
    assert!(
        oldest.request_line(r#"{"op":"health"}"#).is_err(),
        "LRU idle connection should have been evicted for the newcomer"
    );
    server.shutdown();
}

/// Oversized-frame handling matches the pool model: drain, framed error
/// response, close.
#[cfg(unix)]
#[test]
fn reactor_rejects_oversized_frames_like_the_pool() {
    let server = spawn_server(ServerConfig {
        max_frame: 128,
        ..reactor_config()
    });
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let ok = client.request_line(r#"{"op":"list"}"#).unwrap();
    assert_eq!(Json::parse(&ok).unwrap().get("ok"), Some(&Json::Bool(true)));
    let huge = format!(
        r#"{{"op":"query","dataset":"x","patterns":[{{"a":"{}"}}]}}"#,
        "v".repeat(4096)
    );
    let response = client.request_line(&huge).unwrap();
    let parsed = Json::parse(&response).unwrap();
    assert_eq!(parsed.get("ok"), Some(&Json::Bool(false)));
    assert!(parsed
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("exceeds maximum"));
    assert!(client.request_line(r#"{"op":"list"}"#).is_err());
    server.shutdown();
}

/// Remote shutdown drains in flight: the response to the shutdown op is
/// still delivered, then the server winds down.
#[cfg(unix)]
#[test]
fn reactor_remote_shutdown_drains_and_exits() {
    let server = spawn_server(ServerConfig {
        allow_remote_shutdown: true,
        ..reactor_config()
    });
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let accepted = client.request_line(r#"{"op":"shutdown"}"#).unwrap();
    assert_eq!(
        Json::parse(&accepted).unwrap().get("ok"),
        Some(&Json::Bool(true))
    );
    server.wait();
}

#[test]
fn http_named_endpoints_round_trip() {
    let server = spawn_server(test_config());
    let mut client = HttpClient::connect(server.local_addr()).unwrap();

    // GET /healthz before any registration.
    let health = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    let health_json = Json::parse(&health.body).unwrap();
    assert_eq!(health_json.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(health_json.get("datasets").and_then(Json::as_u64), Some(0));

    // POST /register with the op implied by the path.
    let register = client
        .request(
            "POST",
            "/register",
            Some(r#"{"dataset":"census","generator":"figure2","bound":5}"#),
        )
        .unwrap();
    assert_eq!(register.status, 200, "{}", register.body);

    // POST /query — paper Example 2.12 through HTTP.
    let query = client
        .request(
            "POST",
            "/query",
            Some(
                r#"{"dataset":"census","patterns":[{"gender":"Female","age group":"20-39","marital status":"married"}]}"#,
            ),
        )
        .unwrap();
    assert_eq!(query.status, 200);
    let results = Json::parse(&query.body)
        .unwrap()
        .get("results")
        .and_then(Json::as_array)
        .unwrap()
        .to_vec();
    assert_eq!(results[0].get("estimate").and_then(Json::as_f64), Some(3.0));

    // GET /stats?dataset=census and the parameterless list degradation.
    let stats = client
        .request("GET", "/stats?dataset=census", None)
        .unwrap();
    assert_eq!(stats.status, 200);
    assert_eq!(
        Json::parse(&stats.body)
            .unwrap()
            .get("op")
            .and_then(Json::as_str),
        Some("stats")
    );
    let list = client.request("GET", "/stats", None).unwrap();
    assert_eq!(
        Json::parse(&list.body)
            .unwrap()
            .get("op")
            .and_then(Json::as_str),
        Some("list")
    );

    // All of the above reused one keep-alive connection; a failed
    // dispatch maps to 400 with the same JSON error body shape.
    let missing = client
        .request(
            "POST",
            "/query",
            Some(r#"{"dataset":"ghost","patterns":[]}"#),
        )
        .unwrap();
    assert_eq!(missing.status, 400);
    assert_eq!(
        Json::parse(&missing.body).unwrap().get("ok"),
        Some(&Json::Bool(false))
    );

    // Unknown path and unsupported method.
    let lost = client.request("GET", "/nope", None).unwrap();
    assert_eq!(lost.status, 404);
    let put = client.request("PUT", "/query", Some("{}")).unwrap();
    assert_eq!(put.status, 405);

    // Op/path mismatch is rejected before dispatch.
    let mismatch = client
        .request(
            "POST",
            "/query",
            Some(r#"{"op":"drop","dataset":"census"}"#),
        )
        .unwrap();
    assert_eq!(mismatch.status, 400);

    server.shutdown();
}

#[test]
fn expect_100_continue_is_acknowledged() {
    use std::io::{Read, Write};

    let server = spawn_server(test_config());
    let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    // Send the head only, like curl does for larger bodies, and wait
    // for the interim response before the body.
    let body = r#"{"op":"health"}"#;
    let head = format!(
        "POST / HTTP/1.1\r\nHost: x\r\nExpect: 100-continue\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    let mut interim = [0u8; 25];
    stream.read_exact(&mut interim).unwrap();
    assert_eq!(&interim, b"HTTP/1.1 100 Continue\r\n\r\n");

    stream.write_all(body.as_bytes()).unwrap();
    let mut response = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        let n = stream.read(&mut chunk).unwrap();
        response.extend_from_slice(&chunk[..n]);
        if response.windows(4).any(|w| w == b"\r\n\r\n") && response.ends_with(b"}") {
            break;
        }
    }
    let text = String::from_utf8(response).unwrap();
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
    assert!(text.contains(r#""status":"ok""#), "{text}");
    server.shutdown();
}

#[test]
fn oversized_frames_are_rejected_with_an_error_frame() {
    let server = spawn_server(ServerConfig {
        max_frame: 128,
        ..test_config()
    });
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    // Within the limit: fine.
    let ok = client.request_line(r#"{"op":"list"}"#).unwrap();
    assert_eq!(Json::parse(&ok).unwrap().get("ok"), Some(&Json::Bool(true)));

    // Over the limit: the server reports and closes the connection
    // (the stream cannot be re-synchronised past an unread payload).
    let huge = format!(
        r#"{{"op":"query","dataset":"x","patterns":[{{"a":"{}"}}]}}"#,
        "v".repeat(4096)
    );
    let response = client.request_line(&huge).unwrap();
    let parsed = Json::parse(&response).unwrap();
    assert_eq!(parsed.get("ok"), Some(&Json::Bool(false)));
    assert!(parsed
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("exceeds maximum"));
    assert!(client.request_line(r#"{"op":"list"}"#).is_err());

    server.shutdown();
}

#[test]
fn remote_shutdown_is_gated_by_config() {
    // Disabled (default): the op is refused and the server keeps
    // serving.
    let server = spawn_server(test_config());
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let refused = client.request_line(r#"{"op":"shutdown"}"#).unwrap();
    assert_eq!(
        Json::parse(&refused).unwrap().get("ok"),
        Some(&Json::Bool(false))
    );
    let alive = client.request_line(r#"{"op":"health"}"#).unwrap();
    assert_eq!(
        Json::parse(&alive).unwrap().get("ok"),
        Some(&Json::Bool(true))
    );
    server.shutdown();

    // Enabled: the op answers ok and the whole server winds down.
    let server = spawn_server(ServerConfig {
        allow_remote_shutdown: true,
        ..test_config()
    });
    let addr = server.local_addr();
    let mut client = NetClient::connect(addr).unwrap();
    let accepted = client.request_line(r#"{"op":"shutdown"}"#).unwrap();
    assert_eq!(
        Json::parse(&accepted).unwrap().get("ok"),
        Some(&Json::Bool(true))
    );
    server.wait(); // returns because the client's op stopped the server
}

/// The acceptance path for incremental ingest: `append_rows` through the
/// real `pclabel-netd` binary must answer every query exactly like a
/// dataset registered with the full data up front — on both the
/// incremental (schema-stable) and rebuild (dictionary-growth) paths.
#[test]
fn netd_append_rows_equals_full_rebuild() {
    fn csv(rows: std::ops::Range<usize>, extra: Option<&str>) -> String {
        let mut out = String::from("c0,c1,c2,c3\n");
        for r in rows {
            out.push_str(&format!(
                "v{},v{},v{},v{}\n",
                r % 5,
                (r / 5) % 4,
                (r * 7) % 3,
                r % 2
            ));
        }
        if let Some(row) = extra {
            out.push_str(row);
        }
        out
    }
    fn patterns() -> String {
        let mut out = Vec::new();
        for i in 0..40usize {
            out.push(match i % 4 {
                // Inside S = {c0, c1}: exact path.
                0 => format!(r#"{{"c0":"v{}","c1":"v{}"}}"#, i % 5, (i / 5) % 4),
                // Straddling.
                1 => format!(r#"{{"c0":"v{}","c2":"v{}"}}"#, i % 5, i % 3),
                // Outside S.
                2 => format!(r#"{{"c2":"v{}","c3":"v{}"}}"#, i % 3, i % 2),
                // Unseen value: estimate 0 on both sides.
                _ => r#"{"c0":"v0","c1":"ghost"}"#.to_string(),
            });
        }
        out.join(",")
    }
    /// The `"results"` array of a query response (everything that must
    /// agree between the appended and the full dataset).
    fn results_of(response: &str) -> Json {
        Json::parse(response)
            .expect("query response JSON")
            .get("results")
            .expect("results array")
            .clone()
    }

    let mut child = Command::new(env!("CARGO_BIN_EXE_pclabel-netd"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--timeout-ms",
            "2000",
            "--allow-remote-shutdown",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn pclabel-netd");
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("startup banner");
    let addr = banner
        .split_whitespace()
        .nth(3)
        .expect("address in banner")
        .to_string();
    let mut client = NetClient::connect(&addr).expect("connect to binary");
    let mut send = |line: &str| -> Json {
        let response = client.request_line(line).expect("round-trip");
        Json::parse(&response).unwrap_or_else(|e| panic!("bad JSON {e}: {response}"))
    };

    // "base" gets the first 120 rows; "full" all 160 up front.
    let register = |name: &str, body: &str| {
        format!(
            r#"{{"op":"register","dataset":"{name}","csv":"{}","label_attrs":["c0","c1"]}}"#,
            body.replace('\n', "\\n")
        )
    };
    assert_eq!(
        send(&register("base", &csv(0..120, None))).get("ok"),
        Some(&Json::Bool(true))
    );
    assert_eq!(
        send(&register("full", &csv(0..160, None))).get("ok"),
        Some(&Json::Bool(true))
    );

    // Append rows 120..160 (values all seen before: incremental).
    let rows: Vec<String> = (120..160)
        .map(|r| {
            format!(
                r#"["v{}","v{}","v{}","v{}"]"#,
                r % 5,
                (r / 5) % 4,
                (r * 7) % 3,
                r % 2
            )
        })
        .collect();
    let append = send(&format!(
        r#"{{"op":"append_rows","dataset":"base","rows":[{}]}}"#,
        rows.join(",")
    ));
    assert_eq!(append.get("ok"), Some(&Json::Bool(true)), "{append}");
    assert_eq!(append.get("incremental"), Some(&Json::Bool(true)));
    assert_eq!(append.get("rows").and_then(Json::as_u64), Some(160));
    assert!(!append
        .get("touched_shards")
        .and_then(Json::as_array)
        .unwrap()
        .is_empty());

    // Every pattern answers identically on the appended dataset and the
    // from-scratch one.
    let query = |name: &str| {
        format!(
            r#"{{"op":"query","dataset":"{name}","patterns":[{}]}}"#,
            patterns()
        )
    };
    let base_results = results_of(&client.request_line(&query("base")).expect("base query"));
    let full_results = results_of(&client.request_line(&query("full")).expect("full query"));
    assert_eq!(base_results, full_results);

    // Stats agree on |PC| (and expose the shard count).
    let mut send2 = |line: &str| -> Json {
        let response = client.request_line(line).expect("round-trip");
        Json::parse(&response).unwrap()
    };
    let base_stats = send2(r#"{"op":"stats","dataset":"base"}"#);
    let full_stats = send2(r#"{"op":"stats","dataset":"full"}"#);
    assert_eq!(
        base_stats.get("label_size").and_then(Json::as_u64),
        full_stats.get("label_size").and_then(Json::as_u64)
    );
    assert!(
        base_stats
            .get("count_shards")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1
    );

    // Now grow a dictionary: the rebuild path must also match a full
    // registration that includes the new row.
    let extra = "brand-new,v0,v0,v0\n";
    let append =
        send2(r#"{"op":"append_rows","dataset":"base","rows":[["brand-new","v0","v0","v0"]]}"#);
    assert_eq!(append.get("ok"), Some(&Json::Bool(true)), "{append}");
    assert_eq!(append.get("incremental"), Some(&Json::Bool(false)));
    assert_eq!(
        send2(&register("full2", &csv(0..160, Some(extra)))).get("ok"),
        Some(&Json::Bool(true))
    );
    let probe = |name: &str| {
        format!(
            r#"{{"op":"query","dataset":"{name}","patterns":[{},{{"c0":"brand-new"}}]}}"#,
            patterns()
        )
    };
    let base_results = results_of(&client.request_line(&probe("base")).expect("base query"));
    let full_results = results_of(&client.request_line(&probe("full2")).expect("full2 query"));
    assert_eq!(base_results, full_results);

    let bye = client.request_line(r#"{"op":"shutdown"}"#).unwrap();
    assert_eq!(
        Json::parse(&bye).unwrap().get("ok"),
        Some(&Json::Bool(true))
    );
    assert!(child.wait().expect("netd exits").success());
}

/// Backpressure past the parked-job cap: with one worker, a one-slot
/// queue and `max_parked: 0`, a third concurrent request is answered
/// `{"ok":false,"error":"overloaded"}` immediately (instead of growing
/// the reactor's parking lot), and the connection remains usable.
#[cfg(unix)]
#[test]
fn reactor_overload_past_parked_cap_answers_overloaded() {
    use pclabel_engine::query::Engine;

    // Single-threaded query execution keeps the two heavy batches slow
    // even on many-core CI machines, holding the worker + queue slot
    // while the probe lands.
    let dispatcher = Arc::new(Dispatcher::new(Engine::new(EngineConfig {
        query_threads: 1,
        parallel_batch_threshold: usize::MAX,
    })));
    let server = NetServer::spawn(
        dispatcher,
        ServerConfig {
            model: ConnectionModel::Reactor,
            workers: 1,
            queue_capacity: 1,
            max_parked: 0,
            max_frame: 64 << 20,
            write_timeout: Some(Duration::from_secs(30)),
            ..ServerConfig::default()
        },
    )
    .expect("spawn overload server");
    let addr = server.local_addr();

    let mut setup = NetClient::connect(addr).unwrap();
    let ok = setup
        .request_line(r#"{"op":"register","dataset":"census","generator":"figure2","label_attrs":["gender"]}"#)
        .unwrap();
    assert_eq!(Json::parse(&ok).unwrap().get("ok"), Some(&Json::Bool(true)));

    // ~300k-pattern batch: hundreds of ms (release) to tens of seconds
    // (debug) of serial dispatch each.
    let heavy = {
        let one = r#"{"gender":"Female","age group":"20-39"}"#;
        format!(
            r#"{{"op":"query","dataset":"census","patterns":[{}]}}"#,
            vec![one; 300_000].join(",")
        )
    };

    std::thread::scope(|scope| {
        for _ in 0..2 {
            let heavy = &heavy;
            scope.spawn(move || {
                let mut client = NetClient::connect(addr).expect("heavy client connects");
                // The batch runs for tens of seconds in debug builds:
                // wait for it instead of tripping the default timeout.
                client.set_timeout(None).unwrap();
                client.set_max_frame(64 << 20);
                let response = client.request_line(heavy).expect("heavy round-trip");
                assert_eq!(
                    Json::parse(&response).expect("heavy JSON").get("ok"),
                    Some(&Json::Bool(true))
                );
            });
            // First request occupies the worker, second the queue slot.
            std::thread::sleep(Duration::from_millis(200));
        }

        // Worker busy + queue full + nothing may park: refused, fast.
        let mut probe = NetClient::connect(addr).expect("probe connects");
        probe.set_timeout(Some(Duration::from_secs(5))).unwrap();
        let refused = probe.request_line(r#"{"op":"health"}"#).expect("refusal");
        let parsed = Json::parse(&refused).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(false)), "{refused}");
        assert_eq!(
            parsed.get("error").and_then(Json::as_str),
            Some("overloaded")
        );

        // The refused connection was not closed: once the heavy batches
        // drain, the same connection serves again.
        probe.set_timeout(Some(Duration::from_secs(60))).unwrap();
        let mut recovered = false;
        for _ in 0..600 {
            std::thread::sleep(Duration::from_millis(100));
            match probe.request_line(r#"{"op":"health"}"#) {
                Ok(response)
                    if Json::parse(&response).unwrap().get("ok") == Some(&Json::Bool(true)) =>
                {
                    recovered = true;
                    break;
                }
                _ => {}
            }
        }
        assert!(recovered, "overloaded connection must recover");
    });
    server.shutdown();
}

/// Observability end to end: a register→query→append session through
/// the real binary advances the expected counters; `/metrics` parses as
/// Prometheus text with no duplicate series; `server_stats` reports the
/// same numbers over the framed protocol; and `HEAD` mirrors `GET`
/// status and headers with an empty body.
#[test]
fn netd_metrics_and_server_stats_observe_a_session() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_pclabel-netd"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--timeout-ms",
            "2000",
            "--allow-remote-shutdown",
            "--log-level",
            "warn",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn pclabel-netd");
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("startup banner");
    let addr = banner
        .split_whitespace()
        .nth(3)
        .expect("address in banner")
        .to_string();

    let mut client = NetClient::connect(&addr).expect("connect to binary");
    let mut send = |line: &str| -> Json {
        let response = client.request_line(line).expect("round-trip");
        Json::parse(&response).unwrap_or_else(|e| panic!("bad JSON {e}: {response}"))
    };
    let register =
        r#"{"op":"register","dataset":"t","csv":"a,b\n1,x\n1,y\n2,x\n","label_attrs":["a","b"]}"#;
    assert_eq!(send(register).get("ok"), Some(&Json::Bool(true)));
    let query = r#"{"op":"query","dataset":"t","patterns":[{"a":"1","b":"x"}]}"#;
    for _ in 0..2 {
        assert_eq!(send(query).get("ok"), Some(&Json::Bool(true)));
    }
    let append = r#"{"op":"append_rows","dataset":"t","rows":[["1","x"]]}"#;
    assert_eq!(send(append).get("ok"), Some(&Json::Bool(true)));

    // The Prometheus scrape covers engine counters, per-dataset cache
    // series and the transport gauges — and does not count itself.
    let mut http = HttpClient::connect(&addr).expect("HTTP connect");
    let metrics = http.request("GET", "/metrics", None).unwrap();
    assert_eq!(metrics.status, 200);
    assert_eq!(
        metrics.header("content-type"),
        Some("text/plain; version=0.0.4")
    );
    let text = metrics.body.clone();
    for needle in [
        "pclabel_requests_total{op=\"register\"} 1",
        "pclabel_requests_total{op=\"query\"} 2",
        "pclabel_requests_total{op=\"append_rows\"} 1",
        "pclabel_cache_hits_total{dataset=\"t\"} 1",
        "pclabel_cache_misses_total{dataset=\"t\"} 1",
        "pclabel_cache_invalidations_total{dataset=\"t\"}",
        "pclabel_net_accepts_total 2",
        "pclabel_net_open_connections 2",
        "# TYPE pclabel_request_seconds histogram",
        "pclabel_request_seconds_bucket{op=\"query\",le=\"+Inf\"} 2",
        "# TYPE pclabel_counting_count_seconds histogram",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }

    // Exposition-format sanity: every sample line is `series value`,
    // each series appears once, each family gets one TYPE line.
    let mut series_seen = std::collections::HashSet::new();
    let mut types_seen = std::collections::HashSet::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let family = rest.split_whitespace().next().unwrap().to_string();
            assert!(types_seen.insert(family), "duplicate TYPE line: {line}");
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without a value: {line:?}");
        });
        assert!(value.parse::<f64>().is_ok(), "bad sample value: {line:?}");
        assert!(
            series_seen.insert(series.to_string()),
            "duplicate series: {series}"
        );
    }

    // HEAD mirrors GET: same status, same Content-Length, no body.
    let get_health = http.request("GET", "/healthz", None).unwrap();
    assert_eq!(get_health.status, 200);
    let head_health = http.request("HEAD", "/healthz", None).unwrap();
    assert_eq!(head_health.status, 200);
    assert!(head_health.body.is_empty());
    assert_eq!(
        head_health.header("content-length"),
        Some(get_health.body.len().to_string().as_str())
    );
    for path in ["/stats", "/metrics"] {
        let head = http.request("HEAD", path, None).unwrap();
        assert_eq!(head.status, 200, "HEAD {path}");
        assert!(head.body.is_empty(), "HEAD {path} must carry no body");
        assert!(
            head.header("content-length")
                .and_then(|v| v.parse::<usize>().ok())
                .is_some_and(|n| n > 0),
            "HEAD {path} must declare the GET body length"
        );
        // The keep-alive connection stays in sync after a body-less
        // exchange: the next request round-trips normally.
        assert_eq!(http.request("GET", "/healthz", None).unwrap().status, 200);
    }

    // The framed wire op reports the same counters as the scrape.
    let stats = send(r#"{"op":"server_stats"}"#);
    assert_eq!(stats.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(stats.get("telemetry_enabled"), Some(&Json::Bool(true)));
    let counters = stats.get("counters").expect("counters object");
    assert_eq!(
        counters
            .get("pclabel_requests_total{op=\"query\"}")
            .and_then(Json::as_u64),
        Some(2)
    );
    let gauges = stats.get("gauges").expect("gauges object");
    assert_eq!(
        gauges
            .get("pclabel_net_open_connections")
            .and_then(Json::as_u64),
        Some(2)
    );
    let caches = stats.get("cache").and_then(Json::as_array).expect("cache");
    assert_eq!(caches[0].get("dataset").and_then(Json::as_str), Some("t"));
    assert_eq!(caches[0].get("hits").and_then(Json::as_u64), Some(1));

    let bye = send(r#"{"op":"shutdown"}"#);
    assert_eq!(bye.get("ok"), Some(&Json::Bool(true)));
    assert!(child.wait().expect("netd exits").success());
}

/// Reads the transport's open-connections gauge straight off the shared
/// dispatcher (no connection of its own, so the reading cannot perturb
/// the count it reports).
fn open_conns(dispatcher: &Dispatcher) -> u64 {
    dispatcher
        .metrics_text()
        .lines()
        .find_map(|l| l.strip_prefix("pclabel_net_open_connections "))
        .and_then(|v| v.parse::<f64>().ok())
        .map(|v| v as u64)
        .unwrap_or(u64::MAX)
}

fn wait_for_open_conns(dispatcher: &Dispatcher, want: u64) -> bool {
    for _ in 0..250 {
        if open_conns(dispatcher) == want {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

/// The open-connections gauge tracks the true fleet size through LRU
/// eviction and returns to zero after a graceful drain.
#[cfg(unix)]
#[test]
fn open_connections_gauge_survives_eviction_and_drains_to_zero() {
    let dispatcher = Arc::new(Dispatcher::with_config(EngineConfig::default()));
    let server = NetServer::spawn(
        Arc::clone(&dispatcher),
        ServerConfig {
            max_connections: 2,
            ..reactor_config()
        },
    )
    .expect("spawn capped server");

    let mut a = NetClient::connect(server.local_addr()).unwrap();
    a.request_line(r#"{"op":"health"}"#).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let mut b = NetClient::connect(server.local_addr()).unwrap();
    b.request_line(r#"{"op":"health"}"#).unwrap();
    assert!(wait_for_open_conns(&dispatcher, 2), "two live connections");

    // A third connection breaches the cap: `a` (LRU idle) is evicted, so
    // the gauge stays at the cap rather than growing.
    let mut c = NetClient::connect(server.local_addr()).unwrap();
    c.request_line(r#"{"op":"health"}"#).unwrap();
    assert!(
        wait_for_open_conns(&dispatcher, 2),
        "gauge must stay at the cap through the eviction, got {}",
        open_conns(&dispatcher)
    );

    // Clients hang up; the reactor notices each EOF and the gauge
    // drains to zero while the server is still running.
    drop(a);
    drop(b);
    drop(c);
    assert!(
        wait_for_open_conns(&dispatcher, 0),
        "gauge must return to zero after the fleet drains, got {}",
        open_conns(&dispatcher)
    );

    server.shutdown();
    assert_eq!(open_conns(&dispatcher), 0, "still zero after shutdown");
}

/// The introspection plane end to end through the real binary, on both
/// connection models: a replayed session's traces are retrievable from
/// `/debug/traces` by op and by request id, `/debug/memory` grows
/// monotonically across appends and agrees with the `stats` op's
/// accounting, `/debug/conns` sees the keep-alive fleet, and the framed
/// `server_debug` op returns all three sections at once.
#[test]
fn netd_debug_endpoints_expose_traces_memory_and_conns() {
    let models: &[&str] = if cfg!(unix) {
        &["pool", "reactor"]
    } else {
        &["pool"]
    };
    for model in models {
        let mut child = Command::new(env!("CARGO_BIN_EXE_pclabel-netd"))
            .args([
                "--listen",
                "127.0.0.1:0",
                "--model",
                model,
                "--workers",
                "2",
                "--timeout-ms",
                "2000",
                "--retained-traces",
                "8",
                "--allow-remote-shutdown",
                "--log-level",
                "warn",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn pclabel-netd");
        let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
        let mut banner = String::new();
        stdout.read_line(&mut banner).expect("startup banner");
        let addr = banner
            .split_whitespace()
            .nth(3)
            .expect("address in banner")
            .to_string();

        let mut client = NetClient::connect(&addr).expect("connect to binary");
        let mut send = |line: &str| -> Json {
            let response = client.request_line(line).expect("round-trip");
            Json::parse(&response).unwrap_or_else(|e| panic!("bad JSON {e}: {response}"))
        };
        let register = r#"{"op":"register","dataset":"t","csv":"a,b\n1,x\n1,y\n2,x\n","label_attrs":["a","b"]}"#;
        assert_eq!(send(register).get("ok"), Some(&Json::Bool(true)));
        let query = r#"{"op":"query","dataset":"t","patterns":[{"a":"1","b":"x"}]}"#;
        for _ in 0..2 {
            assert_eq!(send(query).get("ok"), Some(&Json::Bool(true)));
        }

        let mut http = HttpClient::connect(&addr).expect("HTTP connect");
        let get = |http: &mut HttpClient, path: &str| -> (u16, Json) {
            let response = http.request("GET", path, None).expect("GET round-trip");
            let body = Json::parse(&response.body)
                .unwrap_or_else(|e| panic!("bad JSON {e}: {}", response.body));
            (response.status, body)
        };

        // Memory accounting is monotonic across an append (no queries in
        // between, so the cache cannot shrink the total underneath us).
        let (status, mem1) = get(&mut http, "/debug/memory");
        assert_eq!(status, 200, "[{model}]");
        let dataset_bytes = |mem: &Json| -> u64 {
            let datasets = mem
                .get("datasets")
                .and_then(Json::as_array)
                .expect("datasets");
            assert_eq!(datasets.len(), 1);
            assert_eq!(datasets[0].get("dataset").and_then(Json::as_str), Some("t"));
            datasets[0]
                .get("components")
                .and_then(|c| c.get("dataset"))
                .and_then(Json::as_u64)
                .expect("dataset component bytes")
        };
        assert!(
            mem1.get("total_bytes").and_then(Json::as_u64).unwrap() > 0,
            "[{model}] nonzero total"
        );
        let before = dataset_bytes(&mem1);
        let append = format!(
            r#"{{"op":"append_rows","dataset":"t","rows":[{}]}}"#,
            vec![r#"["1","x"]"#; 64].join(",")
        );
        assert_eq!(send(&append).get("ok"), Some(&Json::Bool(true)));
        let (_, mem2) = get(&mut http, "/debug/memory");
        let after = dataset_bytes(&mem2);
        assert!(
            after > before,
            "[{model}] dataset bytes must grow across an append: {before} -> {after}"
        );

        // The stats op and /debug/memory agree on the same accounting.
        let stats = send(r#"{"op":"stats","dataset":"t"}"#);
        let stats_total = stats
            .get("memory")
            .and_then(|m| m.get("total_bytes"))
            .and_then(Json::as_u64)
            .expect("stats memory.total_bytes");
        let (_, mem3) = get(&mut http, "/debug/memory");
        let debug_total = mem3
            .get("datasets")
            .and_then(Json::as_array)
            .and_then(|d| d[0].get("total_bytes"))
            .and_then(Json::as_u64)
            .unwrap();
        assert_eq!(stats_total, debug_total, "[{model}]");

        // Retained traces: the replayed queries are there, newest last,
        // and each carries a request id that retrieves its span tree.
        let (status, traces) = get(&mut http, "/debug/traces?op=query");
        assert_eq!(status, 200, "[{model}]");
        let rows = traces
            .get("traces")
            .and_then(Json::as_array)
            .expect("traces");
        assert_eq!(rows.len(), 2, "[{model}] both queries retained");
        let first = &rows[0];
        assert_eq!(first.get("op").and_then(Json::as_str), Some("query"));
        assert_eq!(first.get("dataset").and_then(Json::as_str), Some("t"));
        let id = first.get("request_id").and_then(Json::as_u64).expect("id");
        assert!(
            !first
                .get("spans")
                .and_then(Json::as_array)
                .unwrap()
                .is_empty(),
            "[{model}] span breakdown present"
        );
        let (status, by_id) = get(&mut http, &format!("/debug/traces?id={id}"));
        assert_eq!(status, 200);
        let found = by_id.get("traces").and_then(Json::as_array).unwrap();
        assert_eq!(found.len(), 1, "[{model}] trace findable by request id");
        assert_eq!(found[0].get("request_id").and_then(Json::as_u64), Some(id));
        let (status, slowest) = get(&mut http, "/debug/traces?op=query&slowest=1");
        assert_eq!(status, 200);
        assert_eq!(
            slowest.get("ring").and_then(Json::as_str),
            Some("slowest"),
            "[{model}]"
        );
        let (status, _) = get(&mut http, "/debug/traces?op=bogus");
        assert_eq!(status, 400, "[{model}] unknown op is a client error");

        // The live connection table sees the keep-alive framed client
        // (idle) and this very scrape (dispatching, http).
        let (status, conns) = get(&mut http, "/debug/conns");
        assert_eq!(status, 200, "[{model}]");
        assert_eq!(conns.get("model").and_then(Json::as_str), Some(*model));
        assert!(conns.get("open").and_then(Json::as_u64).unwrap() >= 2);
        let rows = conns.get("conns").and_then(Json::as_array).unwrap();
        assert!(
            rows.iter().any(|r| {
                r.get("protocol").and_then(Json::as_str) == Some("framed")
                    && r.get("state").and_then(Json::as_str) == Some("idle")
                    && r.get("requests").and_then(Json::as_u64).unwrap_or(0) >= 4
            }),
            "[{model}] idle framed keep-alive client visible in {conns}"
        );
        assert!(
            rows.iter().any(|r| {
                r.get("protocol").and_then(Json::as_str) == Some("http")
                    && r.get("state").and_then(Json::as_str) == Some("dispatching")
            }),
            "[{model}] the scraping connection sees itself dispatching in {conns}"
        );

        // The framed server_debug op returns every section at once.
        let debug = send(r#"{"op":"server_debug"}"#);
        assert_eq!(debug.get("ok"), Some(&Json::Bool(true)), "[{model}]");
        assert!(debug.get("uptime_seconds").is_some());
        assert!(debug.get("version").is_some());
        for section in ["traces", "memory", "conns"] {
            assert!(
                debug.get(section).is_some(),
                "[{model}] server_debug carries {section}"
            );
        }

        let bye = send(r#"{"op":"shutdown"}"#);
        assert_eq!(bye.get("ok"), Some(&Json::Bool(true)));
        assert!(child.wait().expect("netd exits").success());
    }
}

/// A raw HTTP/1.1 POST with `Transfer-Encoding: chunked`: the body is
/// written as `chunk_size`-byte chunks (a chunk extension on the first
/// size line and a trailer after the last chunk, both of which the
/// server must tolerate), then the response is read to EOF
/// (`Connection: close`). Returns the full response text.
fn chunked_post(
    addr: std::net::SocketAddr,
    path: &str,
    body: &[u8],
    chunk_size: usize,
    pace: Option<Duration>,
) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("chunked connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\nTransfer-Encoding: chunked\r\n\r\n"
    );
    stream.write_all(head.as_bytes()).unwrap();
    for (i, chunk) in body.chunks(chunk_size.max(1)).enumerate() {
        let ext = if i == 0 { ";traced=yes" } else { "" };
        stream
            .write_all(format!("{:x}{ext}\r\n", chunk.len()).as_bytes())
            .unwrap();
        stream.write_all(chunk).unwrap();
        stream.write_all(b"\r\n").unwrap();
        if let Some(pause) = pace {
            std::thread::sleep(pause);
        }
    }
    stream.write_all(b"0\r\nX-Body-Done: yes\r\n\r\n").unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("chunked response");
    String::from_utf8(response).expect("UTF-8 response")
}

/// The body of a raw HTTP response (everything after the blank line).
fn http_body(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or("")
}

/// The multi-reactor acceptance matrix: with four event loops — a
/// `SO_REUSEPORT` listener group on the epoll backend, the loop-0
/// accept-and-hand-off fallback on the poll backend — the replay script
/// must stay byte-identical to the stdin/stdout serve loop on both
/// transports, with live connections parked across the loops while it
/// runs.
#[cfg(unix)]
#[test]
fn multi_reactor_replay_is_byte_identical_on_both_backends() {
    let expected = stdio_responses();
    for force_poll in [false, true] {
        for transport in ["framed", "http"] {
            let server = spawn_server(ServerConfig {
                reactors: 4,
                force_poll_backend: force_poll,
                ..reactor_config()
            });
            // Park one proven-live connection per loop so the replay
            // runs while every loop owns state.
            let mut parked = Vec::new();
            for i in 0..4 {
                let mut client = NetClient::connect(server.local_addr()).unwrap();
                let ok = client.request_line(r#"{"op":"health"}"#).unwrap();
                assert_eq!(
                    Json::parse(&ok).unwrap().get("ok"),
                    Some(&Json::Bool(true)),
                    "parked conn {i}, force_poll={force_poll}"
                );
                parked.push(client);
            }

            let got: Vec<String> = if transport == "framed" {
                let mut client = NetClient::connect(server.local_addr()).unwrap();
                script()
                    .iter()
                    .map(|line| canon(&client.request_line(line).expect("framed round-trip")))
                    .collect()
            } else {
                let mut client = HttpClient::connect(server.local_addr()).unwrap();
                script()
                    .iter()
                    .map(|line| {
                        canon(
                            &client
                                .request("POST", "/", Some(line))
                                .expect("HTTP round-trip")
                                .body,
                        )
                    })
                    .collect()
            };
            assert_eq!(expected, got, "{transport}, force_poll={force_poll}");

            // The parked fleet survived the replay.
            for client in parked.iter_mut() {
                let ok = client.request_line(r#"{"op":"health"}"#).unwrap();
                assert_eq!(Json::parse(&ok).unwrap().get("ok"), Some(&Json::Bool(true)));
            }
            server.shutdown();
        }
    }
}

/// The connection cap is split into per-loop budgets, and eviction is a
/// per-loop decision. `force_poll_backend` disables `SO_REUSEPORT`, so
/// loop 0 accepts and hands connections round-robin: A→loop 0, B→loop 1,
/// C→loop 0. With `max_connections: 2` split 1/1, C breaches loop 0's
/// budget and must evict A (loop 0's LRU idle) — never B, which a
/// different loop owns.
#[cfg(unix)]
#[test]
fn per_loop_budgets_evict_within_the_owning_loop() {
    let server = spawn_server(ServerConfig {
        reactors: 2,
        max_connections: 2,
        force_poll_backend: true,
        ..reactor_config()
    });
    let mut a = NetClient::connect(server.local_addr()).unwrap();
    a.request_line(r#"{"op":"health"}"#).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let mut b = NetClient::connect(server.local_addr()).unwrap();
    b.request_line(r#"{"op":"health"}"#).unwrap();

    let mut c = NetClient::connect(server.local_addr()).unwrap();
    let ok = c.request_line(r#"{"op":"health"}"#).unwrap();
    assert_eq!(Json::parse(&ok).unwrap().get("ok"), Some(&Json::Bool(true)));
    assert_eq!(
        Json::parse(&b.request_line(r#"{"op":"health"}"#).unwrap())
            .unwrap()
            .get("ok"),
        Some(&Json::Bool(true)),
        "the other loop's connection must not be evicted for loop 0's budget"
    );
    assert!(
        a.request_line(r#"{"op":"health"}"#).is_err(),
        "loop 0's LRU idle connection should have been evicted"
    );
    server.shutdown();
}

/// With two event loops the `loop="N"` gauge slices must sum to the
/// unlabeled total at all times, `pclabel_net_reactors` reports the loop
/// count, `/debug/conns` carries the reactors count and per-connection
/// buffer accounting — and everything drains back to zero when the
/// fleet hangs up.
#[cfg(unix)]
#[test]
fn per_loop_gauges_sum_to_the_total_and_drain_to_zero() {
    let dispatcher = Arc::new(Dispatcher::with_config(EngineConfig::default()));
    let server = NetServer::spawn(
        Arc::clone(&dispatcher),
        ServerConfig {
            reactors: 2,
            ..reactor_config()
        },
    )
    .expect("spawn two-loop server");

    let loop_slices = |dispatcher: &Dispatcher| -> (u64, usize) {
        let text = dispatcher.metrics_text();
        let mut sum = 0u64;
        let mut loops = 0usize;
        for line in text.lines() {
            if line.starts_with("pclabel_net_loop_open_connections{") {
                let value = line.rsplit(' ').next().unwrap();
                sum += value.parse::<f64>().unwrap() as u64;
                loops += 1;
            }
        }
        (sum, loops)
    };
    let settle = |dispatcher: &Dispatcher, want: u64| -> bool {
        for _ in 0..250 {
            let (sum, loops) = loop_slices(dispatcher);
            if loops == 2 && sum == want && open_conns(dispatcher) == want {
                return true;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        false
    };

    let mut fleet = Vec::new();
    for _ in 0..4 {
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        client.request_line(r#"{"op":"health"}"#).unwrap();
        fleet.push(client);
    }
    assert!(
        settle(&dispatcher, 4),
        "per-loop slices must sum to the global gauge, got {:?} vs total {}",
        loop_slices(&dispatcher),
        open_conns(&dispatcher)
    );
    assert!(
        dispatcher
            .metrics_text()
            .lines()
            .any(|l| l == "pclabel_net_reactors 2"),
        "reactors gauge must report the loop count"
    );

    let mut http = HttpClient::connect(server.local_addr()).unwrap();
    let conns = http.request("GET", "/debug/conns", None).unwrap();
    assert_eq!(conns.status, 200);
    let parsed = Json::parse(&conns.body).unwrap();
    assert_eq!(parsed.get("reactors").and_then(Json::as_u64), Some(2));
    let rows = parsed.get("conns").and_then(Json::as_array).unwrap();
    assert!(rows.len() >= 5, "fleet + scraper visible: {}", conns.body);
    assert!(
        rows.iter()
            .all(|r| r.get("buffered_bytes").and_then(Json::as_u64).is_some()),
        "every row carries buffer accounting: {}",
        conns.body
    );
    drop(http);

    drop(fleet);
    assert!(
        settle(&dispatcher, 0),
        "gauges must drain to zero, got {:?} vs total {}",
        loop_slices(&dispatcher),
        open_conns(&dispatcher)
    );
    server.shutdown();
    assert_eq!(
        loop_slices(&dispatcher),
        (0, 2),
        "still zero after shutdown"
    );
}

/// The streaming acceptance path: an 8 MiB `append_rows` body arrives
/// `Transfer-Encoding: chunked` and is decoded incrementally — the
/// connection's raw staging buffer (`buffered_bytes` in the live
/// connection table) stays bounded by the write watermark the whole
/// time, even as megabytes of wire bytes are consumed before the
/// request dispatches.
#[cfg(unix)]
#[test]
fn chunked_append_rows_streams_an_8mib_body_within_the_watermark() {
    use std::sync::atomic::{AtomicU64, Ordering};

    let watermark = ServerConfig::default().write_watermark as u64;
    let server = spawn_server(ServerConfig {
        max_frame: 32 << 20,
        ..reactor_config()
    });
    let addr = server.local_addr();

    let mut setup = NetClient::connect(addr).unwrap();
    let register = r#"{"op":"register","dataset":"big","csv":"c0,c1,c2,c3\nv0,v1,v2,v3\n","label_attrs":["c0","c1"]}"#;
    let ok = setup.request_line(register).unwrap();
    assert_eq!(Json::parse(&ok).unwrap().get("ok"), Some(&Json::Bool(true)));

    // ~8.4 MiB body: 2048 rows of one 4 KiB value (a single dictionary
    // entry, so the engine-side append stays cheap).
    let pad = "p".repeat(4096);
    let row = format!(r#"["{pad}","v1","v2","v3"]"#);
    let body = format!(
        r#"{{"op":"append_rows","dataset":"big","rows":[{}]}}"#,
        vec![row; 2048].join(",")
    );
    assert!(body.len() >= 8 << 20, "body is at least 8 MiB");

    let peak_buffered = AtomicU64::new(0);
    let deepest_read = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let body = body.as_bytes();
        let sender = scope
            .spawn(move || chunked_post(addr, "/", body, 64 << 10, Some(Duration::from_millis(2))));

        // Watch the upload from a second connection: the table must show
        // the receiving connection consuming wire bytes while its raw
        // buffer stays small.
        let mut http = HttpClient::connect(addr).expect("observer connects");
        while !sender.is_finished() {
            let snap = http
                .request("GET", "/debug/conns", None)
                .expect("observer scrape");
            let Ok(parsed) = Json::parse(&snap.body) else {
                continue;
            };
            let Some(rows) = parsed.get("conns").and_then(Json::as_array) else {
                continue;
            };
            for row in rows {
                let buffered = row
                    .get("buffered_bytes")
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                peak_buffered.fetch_max(buffered, Ordering::Relaxed);
                if row.get("protocol").and_then(Json::as_str) == Some("http")
                    && row.get("state").and_then(Json::as_str) == Some("reading")
                {
                    let bytes_in = row.get("bytes_in").and_then(Json::as_u64).unwrap_or(0);
                    deepest_read.fetch_max(bytes_in, Ordering::Relaxed);
                }
            }
        }

        let response = sender.join().expect("sender thread");
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        let parsed = Json::parse(http_body(&response)).expect("append response JSON");
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)), "{response}");
        assert_eq!(parsed.get("rows").and_then(Json::as_u64), Some(2049));
    });

    let peak = peak_buffered.load(Ordering::Relaxed);
    let deepest = deepest_read.load(Ordering::Relaxed);
    assert!(
        deepest >= 1 << 20,
        "observer must catch the connection mid-body with ≥1 MiB consumed, saw {deepest}"
    );
    assert!(
        peak <= watermark,
        "raw buffered bytes must stay within the watermark: {peak} > {watermark}"
    );

    // The streamed append is queryable like any other.
    let probe = setup
        .request_line(&format!(
            r#"{{"op":"query","dataset":"big","patterns":[{{"c0":"{pad}"}}]}}"#
        ))
        .unwrap();
    let estimate = Json::parse(&probe)
        .unwrap()
        .get("results")
        .and_then(Json::as_array)
        .and_then(|r| r[0].get("estimate"))
        .and_then(Json::as_f64);
    assert_eq!(estimate, Some(2048.0));
    server.shutdown();
}

/// Framing equivalence through the real binary, running two reactors: an
/// `append_rows` delivered `Transfer-Encoding: chunked` (odd-sized
/// chunks, extension, trailer) must leave the dataset in exactly the
/// state a `Content-Length` delivery of the same payload does.
#[test]
fn netd_chunked_append_rows_equals_content_length() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_pclabel-netd"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--reactors",
            "2",
            "--timeout-ms",
            "2000",
            "--allow-remote-shutdown",
            "--log-level",
            "warn",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn pclabel-netd");
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("startup banner");
    if cfg!(unix) {
        assert!(
            banner.contains("2 reactors"),
            "banner reports the loop count: {banner}"
        );
    }
    let addr = banner
        .split_whitespace()
        .nth(3)
        .expect("address in banner")
        .to_string();
    let sock_addr: std::net::SocketAddr = addr.parse().expect("banner address parses");

    let mut client = NetClient::connect(&addr).expect("connect to binary");
    let mut send = |line: &str| -> Json {
        let response = client.request_line(line).expect("round-trip");
        Json::parse(&response).unwrap_or_else(|e| panic!("bad JSON {e}: {response}"))
    };
    let csv = "c0,c1,c2\\nv0,v1,v2\\nv3,v4,v5\\n";
    for name in ["cl", "ch"] {
        let register = format!(
            r#"{{"op":"register","dataset":"{name}","csv":"{csv}","label_attrs":["c0","c1"]}}"#
        );
        assert_eq!(send(&register).get("ok"), Some(&Json::Bool(true)));
    }

    let rows: Vec<String> = (0..200)
        .map(|r| format!(r#"["v{}","v{}","v{}"]"#, r % 7, r % 5, r % 3))
        .collect();
    let payload = |name: &str| {
        format!(
            r#"{{"op":"append_rows","dataset":"{name}","rows":[{}]}}"#,
            rows.join(",")
        )
    };

    // Content-Length delivery to "cl"…
    let mut http = HttpClient::connect(&addr).expect("HTTP connect");
    let with_length = http
        .request("POST", "/", Some(&payload("cl")))
        .expect("Content-Length append");
    assert_eq!(with_length.status, 200, "{}", with_length.body);
    // …chunked delivery of the same rows to "ch", in awkward 7-byte
    // chunks with an extension and a trailer.
    let chunked = chunked_post(sock_addr, "/", payload("ch").as_bytes(), 7, None);
    assert!(chunked.starts_with("HTTP/1.1 200"), "{chunked}");
    let chunked_json = Json::parse(http_body(&chunked)).expect("chunked response JSON");
    let length_json = Json::parse(&with_length.body).expect("CL response JSON");
    assert_eq!(
        chunked_json.get("rows").and_then(Json::as_u64),
        length_json.get("rows").and_then(Json::as_u64),
        "both deliveries append the same row count"
    );

    // Every query answers identically on both datasets.
    let patterns =
        r#"{"c0":"v0"},{"c0":"v1","c1":"v1"},{"c1":"v4","c2":"v2"},{"c2":"v0"},{"c0":"ghost"}"#;
    let results = |name: &str, send: &mut dyn FnMut(&str) -> Json| {
        send(&format!(
            r#"{{"op":"query","dataset":"{name}","patterns":[{patterns}]}}"#
        ))
        .get("results")
        .expect("results array")
        .clone()
    };
    let cl_results = results("cl", &mut send);
    let ch_results = results("ch", &mut send);
    assert_eq!(cl_results, ch_results);
    let cl_stats = send(r#"{"op":"stats","dataset":"cl"}"#);
    let ch_stats = send(r#"{"op":"stats","dataset":"ch"}"#);
    assert_eq!(
        cl_stats.get("label_size").and_then(Json::as_u64),
        ch_stats.get("label_size").and_then(Json::as_u64)
    );

    let bye = send(r#"{"op":"shutdown"}"#);
    assert_eq!(bye.get("ok"), Some(&Json::Bool(true)));
    assert!(child.wait().expect("netd exits").success());
}

#[test]
fn many_sequential_connections_are_served() {
    // Connections beyond the worker count are fine as long as they
    // don't all stay open: each register/query pair uses a fresh
    // connection.
    let server = spawn_server(ServerConfig {
        workers: 2,
        ..test_config()
    });
    for i in 0..8 {
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        let register = client
            .request_line(&format!(
                r#"{{"op":"register","dataset":"d{i}","generator":"figure2","label_attrs":["gender"]}}"#
            ))
            .unwrap();
        assert_eq!(
            Json::parse(&register).unwrap().get("ok"),
            Some(&Json::Bool(true)),
            "register d{i}: {register}"
        );
    }
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let health = client.request_line(r#"{"op":"health"}"#).unwrap();
    assert_eq!(
        Json::parse(&health)
            .unwrap()
            .get("datasets")
            .and_then(Json::as_u64),
        Some(8)
    );
    server.shutdown();
}
