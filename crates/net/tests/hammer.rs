//! The concurrency hammer: N client threads issue interleaved
//! register/query/refresh/drop traffic against one `pclabel-netd`-style
//! server and assert that
//!
//! * every query answer matches `Label::estimate` / exact-projection
//!   ground truth computed locally, and
//! * a dataset's label generation never goes backwards within any one
//!   client's serialized request stream.
//!
//! Refreshes reuse the same label policy, so the label contents (and
//! with them the ground truth) are invariant while generations climb.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use pclabel_core::attrset::AttrSet;
use pclabel_core::label::Label;
use pclabel_core::pattern::Pattern;
use pclabel_data::dataset::Dataset;
use pclabel_data::generate::figure2_sample;
use pclabel_engine::json::Json;
use pclabel_engine::query::EngineConfig;
use pclabel_engine::serve::Dispatcher;
use pclabel_net::client::NetClient;
use pclabel_net::server::{ConnectionModel, NetServer, ServerConfig};

const CLIENTS: usize = 6;
const ITERS: usize = 48;

/// The two shared datasets: name, label attributes (by name and index).
const SHARED: [(&str, [&str; 2], [usize; 2]); 2] = [
    ("shared0", ["gender", "age group"], [0, 1]),
    ("shared1", ["age group", "marital status"], [1, 3]),
];

/// Query patterns sent at the shared datasets (mixed inside/outside the
/// label subsets).
fn query_patterns() -> Vec<Vec<(&'static str, &'static str)>> {
    vec![
        vec![("gender", "Female")],
        vec![("age group", "20-39")],
        vec![("gender", "Female"), ("age group", "20-39")],
        vec![("marital status", "married")],
        vec![
            ("gender", "Female"),
            ("age group", "20-39"),
            ("marital status", "married"),
        ],
    ]
}

/// What the engine must answer: exact projection inside `S`, the
/// paper's estimate outside.
fn expected_estimate(label: &Label, dataset: &Dataset, terms: &[(&str, &str)]) -> f64 {
    let p = Pattern::parse(dataset, terms).expect("ground-truth pattern parses");
    if p.attrs().is_subset_of(label.attrs()) {
        label.count_of_projection(&p) as f64
    } else {
        label.estimate(&p)
    }
}

fn register_line(dataset: &str, attrs: [&str; 2]) -> String {
    format!(
        r#"{{"op":"register","dataset":"{dataset}","generator":"figure2","label_attrs":["{}","{}"]}}"#,
        attrs[0], attrs[1]
    )
}

fn query_line(dataset: &str, terms: &[(&str, &str)]) -> String {
    let pattern: Vec<String> = terms
        .iter()
        .map(|(a, v)| format!(r#""{a}":"{v}""#))
        .collect();
    format!(
        r#"{{"op":"query","dataset":"{dataset}","patterns":[{{{}}}]}}"#,
        pattern.join(",")
    )
}

#[test]
fn hammer_interleaved_ops_match_ground_truth() {
    // Pool model: every client pins a worker, so over-provision.
    hammer(ServerConfig {
        workers: CLIENTS + 1,
        ..ServerConfig::default()
    });
}

/// The same storm against the reactor — deliberately *under*-provisioned
/// (2 workers for 6 persistent clients), which would deadlock the pool
/// model: the reactor holds workers per request, not per connection.
#[cfg(unix)]
#[test]
fn hammer_reactor_with_fewer_workers_than_clients() {
    hammer(ServerConfig {
        model: ConnectionModel::Reactor,
        workers: 2,
        ..ServerConfig::default()
    });
}

fn hammer(config: ServerConfig) {
    // Local ground truth: the same labels the server will build.
    let d = figure2_sample();
    let truth: Vec<Label> = SHARED
        .iter()
        .map(|(_, _, indices)| Label::build(&d, AttrSet::from_indices(*indices)))
        .collect();
    let patterns = query_patterns();
    let expected: Vec<Vec<f64>> = truth
        .iter()
        .map(|label| {
            patterns
                .iter()
                .map(|terms| expected_estimate(label, &d, terms))
                .collect()
        })
        .collect();

    let server = NetServer::spawn(
        Arc::new(Dispatcher::with_config(EngineConfig::default())),
        ServerConfig {
            queue_capacity: 16,
            read_timeout: Some(Duration::from_millis(150)),
            write_timeout: Some(Duration::from_secs(5)),
            ..config
        },
    )
    .expect("spawn hammer server");
    let addr = server.local_addr();

    {
        let mut setup = NetClient::connect(addr).unwrap();
        for (name, attrs, _) in SHARED {
            let response = setup.request_line(&register_line(name, attrs)).unwrap();
            assert_eq!(
                Json::parse(&response).unwrap().get("ok"),
                Some(&Json::Bool(true)),
                "register {name}: {response}"
            );
        }
    } // setup connection closes, freeing its worker

    std::thread::scope(|scope| {
        for t in 0..CLIENTS {
            let expected = &expected;
            let patterns = &patterns;
            scope.spawn(move || {
                let mut client = NetClient::connect(addr).expect("hammer client connects");
                // Per-thread watermark: within one serialized request
                // stream, a dataset's generation must never decrease.
                let mut last_gen: HashMap<String, u64> = HashMap::new();
                for i in 0..ITERS {
                    let shared_ix = (t + i) % SHARED.len();
                    let (name, attrs, _) = SHARED[shared_ix];
                    match i % 4 {
                        // Mostly queries, verified against ground truth.
                        0 | 2 => {
                            let pattern_ix = (t + i) % patterns.len();
                            let response = client
                                .request_line(&query_line(name, &patterns[pattern_ix]))
                                .expect("query round-trip");
                            let parsed = Json::parse(&response).unwrap();
                            assert_eq!(
                                parsed.get("ok"),
                                Some(&Json::Bool(true)),
                                "client {t} iter {i}: {response}"
                            );
                            let results =
                                parsed.get("results").and_then(Json::as_array).unwrap();
                            let estimate =
                                results[0].get("estimate").and_then(Json::as_f64).unwrap();
                            assert_eq!(
                                estimate, expected[shared_ix][pattern_ix],
                                "client {t} iter {i} dataset {name} pattern {pattern_ix}"
                            );
                            let generation =
                                parsed.get("generation").and_then(Json::as_u64).unwrap();
                            let watermark = last_gen.entry(name.to_string()).or_insert(0);
                            assert!(
                                generation >= *watermark,
                                "client {t} iter {i}: generation went backwards \
                                 ({generation} < {watermark}) on {name}"
                            );
                            *watermark = generation;
                        }
                        // Refresh with the identical policy: estimates
                        // stay put, generation climbs.
                        1 => {
                            let line = format!(
                                r#"{{"op":"refresh","dataset":"{name}","label_attrs":["{}","{}"]}}"#,
                                attrs[0], attrs[1]
                            );
                            let response = client.request_line(&line).expect("refresh");
                            let parsed = Json::parse(&response).unwrap();
                            assert_eq!(
                                parsed.get("ok"),
                                Some(&Json::Bool(true)),
                                "client {t} iter {i}: {response}"
                            );
                        }
                        // Register → query → drop a per-thread scratch
                        // dataset (never contended, but interleaved with
                        // everyone else's traffic in the store).
                        _ => {
                            let scratch = format!("scratch{t}");
                            let line = format!(
                                r#"{{"op":"register","dataset":"{scratch}","csv":"a,b\nx,1\ny,2\nx,1\n","label_attrs":["a","b"]}}"#
                            );
                            let response = client.request_line(&line).expect("scratch register");
                            assert_eq!(
                                Json::parse(&response).unwrap().get("ok"),
                                Some(&Json::Bool(true)),
                                "client {t} iter {i}: {response}"
                            );
                            let response = client
                                .request_line(&query_line(&scratch, &[("a", "x"), ("b", "1")]))
                                .expect("scratch query");
                            let parsed = Json::parse(&response).unwrap();
                            let results =
                                parsed.get("results").and_then(Json::as_array).unwrap();
                            assert_eq!(
                                results[0].get("estimate").and_then(Json::as_f64),
                                Some(2.0),
                                "client {t} iter {i}: {response}"
                            );
                            let response = client
                                .request_line(&format!(
                                    r#"{{"op":"drop","dataset":"{scratch}"}}"#
                                ))
                                .expect("scratch drop");
                            assert_eq!(
                                Json::parse(&response).unwrap().get("dropped"),
                                Some(&Json::Bool(true)),
                                "client {t} iter {i}: {response}"
                            );
                        }
                    }
                }
            });
        }
    });

    // After the storm: both shared datasets still answer, and only they
    // remain registered.
    let mut client = NetClient::connect(addr).unwrap();
    let list = client.request_line(r#"{"op":"list"}"#).unwrap();
    let parsed = Json::parse(&list).unwrap();
    let datasets = parsed.get("datasets").and_then(Json::as_array).unwrap();
    assert_eq!(datasets.len(), SHARED.len(), "{list}");
    for ((name, _, _), entry) in SHARED.iter().zip(datasets) {
        assert_eq!(entry.get("dataset").and_then(Json::as_str), Some(*name));
        // CLIENTS threads × ITERS/4 refreshes happened across both
        // datasets; each dataset saw at least one.
        assert!(entry.get("generation").and_then(Json::as_u64).unwrap() >= 1);
    }
    server.shutdown();
}
